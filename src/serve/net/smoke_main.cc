// k2_server_smoke — the wire-vs-in-process differential driver behind the
// server-smoke CI job (scripts/server_smoke.sh).
//
// It connects to a running k2_server, streams a deterministic planted-convoy
// dataset through kIngest, and mirrors every tick into an in-process
// reference (OnlineK2HopMiner -> ConvoyCatalog with the same publish
// cadence). After each publish it runs every ConvoyQuery type plus a full
// conjunction over the wire — pipelined — and demands the raw kConvoys
// reply bodies be BYTE-IDENTICAL to the reference answers encoded with the
// same protocol routines. The two-phase schedule (ingest, publish, compare;
// ingest more, publish, compare) makes the second round run against a
// swapped snapshot, proving wire readers observe the swap exactly as
// in-process readers do. It also probes the error paths (malformed body
// keeps the connection; a corrupt CRC kills it with a named error) and,
// with --shutdown, ends by driving the graceful drain.
//
//   k2_server_smoke --port N [--host A] [--m N] [--k N] [--eps F]
//                   [--publish-every N] [--shutdown]
//   k2_server_smoke --dump-examples   # hex frames for docs/WIRE_PROTOCOL.md
//
// The mining flags MUST match the ones the server was started with.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/online.h"
#include "gen/synthetic.h"
#include "model/dataset.h"
#include "serve/catalog.h"
#include "serve/net/client.h"
#include "serve/net/protocol.h"
#include "serve/query.h"
#include "storage/memory_store.h"

namespace {

using k2::Convoy;
using k2::ConvoyId;
using k2::ConvoyQuery;
using k2::ConvoyQueryEngine;
using k2::ConvoyRank;
using k2::Dataset;
using k2::ObjectId;
using k2::Rect;
using k2::SnapshotPoint;
using k2::Timestamp;
using k2::TimeRange;
using k2::net::Frame;
using k2::net::FrameReader;
using k2::net::MessageType;
using k2::net::WireError;

[[noreturn]] void Fail(const std::string& what) {
  std::fprintf(stderr, "k2_server_smoke: FAIL: %s\n", what.c_str());
  std::exit(1);
}

void Check(bool ok, const std::string& what) {
  if (!ok) Fail(what);
}

void CheckStatus(const k2::Status& status, const std::string& what) {
  if (!status.ok()) Fail(what + ": " + status.ToString());
}

// --- --dump-examples ------------------------------------------------------

void DumpHex(const char* label, const std::string& bytes) {
  std::printf("%s (%zu bytes)\n", label, bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::printf("%02x%s", static_cast<unsigned char>(bytes[i]),
                (i + 1) % 16 == 0 || i + 1 == bytes.size() ? "\n" : " ");
  }
  std::printf("\n");
}

int DumpExamples() {
  using namespace k2::net;
  DumpHex("Hello (request_id=1, versions [1,1])",
          EncodeFrame(MessageType::kHello, 1, EncodeHello({1, 1})));
  DumpHex("HelloOk (request_id=1, version 1)",
          EncodeFrame(MessageType::kHelloOk, 1, EncodeHelloOk(1)));
  const std::vector<SnapshotPoint> points = {
      {1, 10.0, 20.0}, {2, 11.5, 20.25}, {3, 12.0, 21.0}};
  DumpHex("Ingest (request_id=2, t=7, 3 points)",
          EncodeFrame(MessageType::kIngest, 2, EncodeIngest(7, points)));
  IngestAck ack;
  ack.frontier = 7;
  ack.closed_convoys = 0;
  DumpHex("IngestOk (request_id=2, frontier=7, closed=0)",
          EncodeFrame(MessageType::kIngestOk, 2, EncodeIngestAck(ack)));
  ConvoyQuery query;
  query.time_window = TimeRange{0, 16};
  DumpHex("Query (request_id=3, window [0,16])",
          EncodeFrame(MessageType::kQuery, 3, EncodeQuery(query)));
  const std::vector<Convoy> convoys = {
      Convoy(k2::ObjectSet::Of({1, 2, 3}), 4, 9)};
  DumpHex("Convoys (request_id=3, one convoy {1,2,3} x [4,9])",
          EncodeFrame(MessageType::kConvoys, 3, EncodeConvoys(convoys)));
  DumpHex("Error (request_id=0, BadCrc)",
          EncodeFrame(MessageType::kError, 0,
                      EncodeError(WireError::kBadCrc,
                                  "frame crc mismatch: stored deadbeef")));
  return 0;
}

// --- raw socket probe (for deliberately corrupt frames) -------------------

struct RawConn {
  int fd = -1;
  FrameReader reader;

  explicit RawConn(const std::string& host, uint16_t port) {
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    Check(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
          "raw probe: bad host");
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    Check(fd >= 0, "raw probe: socket");
    Check(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)) == 0,
          "raw probe: connect");
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      Check(n > 0 || errno == EINTR, "raw probe: send");
      if (n > 0) sent += static_cast<size_t>(n);
    }
  }

  /// Next reply frame; fails the smoke on EOF when `eof_ok` is false.
  /// Returns false on clean EOF.
  bool Receive(Frame* out, bool eof_ok = false) {
    for (;;) {
      switch (reader.Next(out)) {
        case FrameReader::Poll::kFrame:
          return true;
        case FrameReader::Poll::kError:
          Fail("raw probe: reply stream error: " + reader.error_message());
        case FrameReader::Poll::kNeedMore:
          break;
      }
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        reader.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      Check(n == 0, "raw probe: recv");
      Check(eof_ok, "raw probe: unexpected EOF");
      return false;
    }
  }

  /// True once the server closes this connection (EOF observed).
  bool WaitForClose() {
    Frame frame;
    while (Receive(&frame, /*eof_ok=*/true)) {
    }
    return true;
  }
};

k2::net::ErrorReply ExpectError(const Frame& frame, WireError want,
                                const std::string& context) {
  Check(frame.type == MessageType::kError,
        context + ": expected kError, got " +
            k2::net::MessageTypeName(frame.type));
  auto parsed = k2::net::ParseError(frame.body);
  CheckStatus(parsed.status(), context + ": unparseable kError body");
  Check(parsed.value().error == want,
        context + ": expected " + k2::net::WireErrorName(want) + ", got " +
            k2::net::WireErrorName(parsed.value().error));
  return parsed.value();
}

void ProbeErrorPaths(const std::string& host, uint16_t port) {
  // 1. Malformed body is request-scoped: the connection stays usable.
  {
    RawConn conn(host, port);
    conn.Send(k2::net::EncodeFrame(MessageType::kHello, 1,
                                   k2::net::EncodeHello({1, 1})));
    Frame frame;
    conn.Receive(&frame);
    Check(frame.type == MessageType::kHelloOk, "probe: handshake failed");
    conn.Send(k2::net::EncodeFrame(MessageType::kQuery, 2,
                                   "this is not a query body"));
    conn.Receive(&frame);
    ExpectError(frame, WireError::kMalformedBody, "malformed-body probe");
    // Same connection must still answer.
    conn.Send(k2::net::EncodeFrame(MessageType::kPing, 3, {}));
    conn.Receive(&frame);
    Check(frame.type == MessageType::kPong,
          "probe: connection unusable after request-level error");
  }
  // 2. A corrupt CRC is fatal: named error, then close; the server (and
  // every other connection) survives.
  {
    RawConn conn(host, port);
    std::string hello = k2::net::EncodeFrame(MessageType::kHello, 1,
                                             k2::net::EncodeHello({1, 1}));
    hello[0] ^= 0x40;  // flip one CRC bit
    conn.Send(hello);
    Frame frame;
    conn.Receive(&frame);
    ExpectError(frame, WireError::kBadCrc, "bad-crc probe");
    conn.WaitForClose();
  }
  // 3. Skipping the handshake is fatal with a named error.
  {
    RawConn conn(host, port);
    conn.Send(k2::net::EncodeFrame(MessageType::kPing, 1, {}));
    Frame frame;
    conn.Receive(&frame);
    ExpectError(frame, WireError::kUnexpectedMessage, "no-handshake probe");
    conn.WaitForClose();
  }
}

// --- the differential smoke ----------------------------------------------

struct ReferenceServer {
  k2::MemoryStore store;
  k2::ConvoyCatalog catalog;
  std::unique_ptr<k2::OnlineK2HopMiner> miner;

  ReferenceServer(const k2::MiningParams& params, size_t publish_every) {
    k2::OnlineK2HopOptions options;
    options.on_closed = catalog.OnClosedHook(&store, publish_every);
    miner = std::make_unique<k2::OnlineK2HopMiner>(&store, params, options);
    catalog.Publish();  // mirror K2Server::Start's initial empty publish
  }
};

std::vector<ConvoyQuery> SmokeQueries() {
  std::vector<ConvoyQuery> queries;
  queries.emplace_back();  // unconstrained
  ConvoyQuery q;
  q.object = ObjectId{0};  // member of planted group 0
  queries.push_back(q);
  q = ConvoyQuery{};
  q.object = ObjectId{100000};  // absent object
  queries.push_back(q);
  q = ConvoyQuery{};
  q.time_window = TimeRange{10, 25};
  queries.push_back(q);
  q = ConvoyQuery{};
  q.region = Rect{0.0, 0.0, 6000.0, 6000.0};
  queries.push_back(q);
  q = ConvoyQuery{};  // full conjunction
  q.object = ObjectId{0};
  q.time_window = TimeRange{5, 40};
  q.region = Rect{-10000.0, -10000.0, 10000.0, 10000.0};
  queries.push_back(q);
  return queries;
}

std::string ReferenceFindBody(const ReferenceServer& ref,
                              const ConvoyQuery& query) {
  const auto snap = ref.catalog.snapshot();
  std::vector<ConvoyId> ids;
  ConvoyQueryEngine::FindIds(*snap, query, &ids);
  std::vector<Convoy> convoys;
  convoys.reserve(ids.size());
  for (ConvoyId id : ids) convoys.push_back(snap->convoy(id));
  return k2::net::EncodeConvoys(convoys);
}

std::string ReferenceTopKBody(const ReferenceServer& ref,
                              const ConvoyQuery& query, ConvoyRank rank,
                              uint32_t k) {
  const auto snap = ref.catalog.snapshot();
  std::vector<ConvoyId> ids;
  ConvoyQueryEngine::TopKIds(*snap, query, rank, k, &ids);
  std::vector<Convoy> convoys;
  convoys.reserve(ids.size());
  for (ConvoyId id : ids) convoys.push_back(snap->convoy(id));
  return k2::net::EncodeConvoys(convoys);
}

/// Pipelines every query type + two TopK forms over the wire and demands
/// byte-identical reply bodies vs the in-process reference.
void CompareAllQueries(k2::net::K2Client* client, const ReferenceServer& ref,
                       const char* phase) {
  const std::vector<ConvoyQuery> queries = SmokeQueries();
  std::vector<std::string> expected;
  for (const ConvoyQuery& query : queries) {
    client->SendQuery(query);
    expected.push_back(ReferenceFindBody(ref, query));
  }
  client->SendTopK(ConvoyQuery{}, ConvoyRank::kLongest, 3);
  expected.push_back(
      ReferenceTopKBody(ref, ConvoyQuery{}, ConvoyRank::kLongest, 3));
  ConvoyQuery windowed;
  windowed.time_window = TimeRange{0, 30};
  client->SendTopK(windowed, ConvoyRank::kLargest, 5);
  expected.push_back(
      ReferenceTopKBody(ref, windowed, ConvoyRank::kLargest, 5));

  CheckStatus(client->Flush(), std::string(phase) + ": flush");
  for (size_t i = 0; i < expected.size(); ++i) {
    auto reply = client->Receive();
    CheckStatus(reply.status(), std::string(phase) + ": receive");
    Check(reply.value().type == MessageType::kConvoys,
          std::string(phase) + ": query " + std::to_string(i) +
              " answered with " +
              k2::net::MessageTypeName(reply.value().type));
    Check(reply.value().body == expected[i],
          std::string(phase) + ": query " + std::to_string(i) +
              " reply body differs from in-process reference (" +
              std::to_string(reply.value().body.size()) + " vs " +
              std::to_string(expected[i].size()) + " bytes)");
  }
  std::printf("k2_server_smoke: %s: %zu wire answers byte-identical\n",
              phase, expected.size());
}

int RunSmoke(const std::string& host, uint16_t port,
             const k2::MiningParams& params, size_t publish_every,
             bool shutdown) {
  // Deterministic dataset: three planted groups + noise, dense enough that
  // every query type has non-empty answers.
  k2::PlantedConvoySpec spec;
  spec.num_noise_objects = 30;
  spec.num_ticks = 48;
  spec.seed = 20260807;
  spec.groups = {{4, 2, 30, 8.0}, {3, 8, 40, 6.0}, {5, 12, 46, 10.0}};
  const Dataset dataset = k2::GeneratePlantedConvoys(spec);

  ReferenceServer ref(params, publish_every);

  auto connected = k2::net::K2Client::Connect({host, port});
  CheckStatus(connected.status(), "connect");
  std::unique_ptr<k2::net::K2Client> client = connected.MoveValue();
  Check(client->negotiated_version() == k2::net::kProtocolVersion,
        "negotiated version mismatch");
  CheckStatus(client->Ping(), "ping");

  const std::vector<Timestamp>& ticks = dataset.timestamps();
  const size_t half = ticks.size() / 2;

  auto ingest_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Timestamp t = ticks[i];
      const std::vector<SnapshotPoint> points =
          k2::SnapshotPoints(dataset, t);
      auto ack = client->Ingest(t, points);
      CheckStatus(ack.status(), "ingest t=" + std::to_string(t));
      CheckStatus(ref.miner->AppendTick(t, points),
                  "reference ingest t=" + std::to_string(t));
      CheckStatus(ref.catalog.hook_status(), "reference hook");
      Check(ack.value().frontier == ref.miner->frontier(),
            "frontier diverged at t=" + std::to_string(t));
      Check(ack.value().closed_convoys ==
                ref.miner->closed_convoys().size(),
            "closed-convoy count diverged at t=" + std::to_string(t));
    }
  };

  // Phase 1: first half of the stream, explicit publish, full comparison.
  ingest_range(0, half);
  auto publish = client->Publish();
  CheckStatus(publish.status(), "publish 1");
  ref.catalog.Publish();
  const uint64_t epoch1 = publish.value().epoch;
  CompareAllQueries(client.get(), ref, "phase 1");

  // Phase 2: rest of the stream, publish again — the catalog snapshot
  // swaps under live wire readers — and everything must still agree.
  ingest_range(half, ticks.size());
  publish = client->Publish();
  CheckStatus(publish.status(), "publish 2");
  ref.catalog.Publish();
  Check(publish.value().epoch > epoch1,
        "second publish did not advance the snapshot epoch");
  CompareAllQueries(client.get(), ref, "phase 2 (post-swap)");

  // Aggregate counters agree with the reference.
  auto stats = client->Stats();
  CheckStatus(stats.status(), "stats");
  Check(stats.value().frontier == ref.miner->frontier(),
        "stats frontier mismatch");
  Check(stats.value().ticks_ingested == ref.miner->stats().ticks_ingested,
        "stats tick count mismatch");
  Check(stats.value().closed_convoys == ref.miner->closed_convoys().size(),
        "stats closed-convoy mismatch");
  Check(stats.value().catalog_convoys == ref.catalog.snapshot()->size(),
        "stats catalog size mismatch");
  std::printf(
      "k2_server_smoke: stats agree (frontier=%d, ticks=%llu, "
      "closed=%llu, catalog=%llu)\n",
      stats.value().frontier,
      static_cast<unsigned long long>(stats.value().ticks_ingested),
      static_cast<unsigned long long>(stats.value().closed_convoys),
      static_cast<unsigned long long>(stats.value().catalog_convoys));

  ProbeErrorPaths(host, port);
  std::printf("k2_server_smoke: error-path probes passed\n");

  if (shutdown) {
    CheckStatus(client->Shutdown(), "shutdown");
    std::printf("k2_server_smoke: graceful shutdown acknowledged\n");
  }
  std::printf("k2_server_smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  k2::MiningParams params{3, 4, 120.0};
  size_t publish_every = 2;
  bool shutdown = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) Fail(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--dump-examples") return DumpExamples();
    if (arg == "--host") {
      host = value();
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(value()));
    } else if (arg == "--m") {
      params.m = std::atoi(value());
    } else if (arg == "--k") {
      params.k = std::atoi(value());
    } else if (arg == "--eps") {
      params.eps = std::atof(value());
    } else if (arg == "--publish-every") {
      publish_every = static_cast<size_t>(std::atoll(value()));
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      Fail("unknown flag " + arg);
    }
  }
  if (port == 0) Fail("--port is required (the server's listening port)");
  return RunSmoke(host, port, params, publish_every, shutdown);
}
