// Storage engines side by side (paper Sec. 5): the same k/2-hop query runs
// against the flat-file store, the clustered B+-tree ("relational") store
// and the LSM-tree store; the IO counters show why the access-path choice
// matters for k/2-hop's scan-few/point-read-many pattern.
#include <iomanip>
#include <iostream>

#include "common/stopwatch.h"
#include "core/k2hop.h"
#include "gen/tdrive.h"
#include "storage/store.h"

int main() {
  k2::TDriveParams params;
  params.scale = 1.0 / 64.0;  // ~160 taxis
  params.ticks = 800;
  const k2::Dataset dataset = k2::GenerateTDrive(params);
  std::cout << "dataset: " << dataset.DebugString() << "\n\n";

  const k2::MiningParams query{3, 100, 60.0};

  std::cout << std::left << std::setw(8) << "engine" << std::right
            << std::setw(9) << "load(s)" << std::setw(9) << "mine(s)"
            << std::setw(9) << "scans" << std::setw(12) << "point-reads"
            << std::setw(12) << "bytes-read" << std::setw(8) << "seeks"
            << "\n";
  for (k2::StoreKind kind :
       {k2::StoreKind::kMemory, k2::StoreKind::kFile, k2::StoreKind::kBPlusTree,
        k2::StoreKind::kLsm}) {
    auto store_result =
        k2::CreateStore(kind, std::string("/tmp/k2hop_example_") +
                                  k2::StoreKindName(kind));
    if (!store_result.ok()) {
      std::cerr << store_result.status().ToString() << "\n";
      return 1;
    }
    auto store = store_result.MoveValue();
    k2::Stopwatch load_watch;
    if (auto s = store->BulkLoad(dataset); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    const double load_seconds = load_watch.ElapsedSeconds();

    store->io_stats().Clear();
    k2::Stopwatch mine_watch;
    auto result = k2::MineK2Hop(store.get(), query);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const double mine_seconds = mine_watch.ElapsedSeconds();
    const k2::IoStats& io = store->io_stats();
    std::cout << std::left << std::setw(8) << store->name() << std::right
              << std::setw(9) << std::fixed << std::setprecision(3)
              << load_seconds << std::setw(9) << mine_seconds << std::setw(9)
              << io.snapshot_scans << std::setw(12) << io.point_queries
              << std::setw(12) << io.bytes_read << std::setw(8) << io.seeks
              << "\n";
  }
  std::cout << "\n(all engines return identical convoys; the differential "
               "tests assert it)\n";
  return 0;
}
