#include "model/dataset.h"

#include <algorithm>
#include <sstream>

namespace k2 {

std::span<const PointRecord> Dataset::Snapshot(Timestamp t) const {
  auto it = std::lower_bound(timestamps_.begin(), timestamps_.end(), t);
  if (it == timestamps_.end() || *it != t) return {};
  size_t i = static_cast<size_t>(it - timestamps_.begin());
  return std::span<const PointRecord>(records_.data() + extents_[i],
                                      extents_[i + 1] - extents_[i]);
}

const PointRecord* Dataset::Find(Timestamp t, ObjectId oid) const {
  auto snap = Snapshot(t);
  auto it = std::lower_bound(
      snap.begin(), snap.end(), oid,
      [](const PointRecord& r, ObjectId o) { return r.oid < o; });
  if (it == snap.end() || it->oid != oid) return nullptr;
  return &*it;
}

Dataset Dataset::Restrict(const std::vector<ObjectId>& sorted_oids,
                          TimeRange range) const {
  DatasetBuilder builder;
  for (const PointRecord& rec : records_) {
    if (!range.Contains(rec.t)) continue;
    if (!std::binary_search(sorted_oids.begin(), sorted_oids.end(), rec.oid)) {
      continue;
    }
    builder.Add(rec);
  }
  return builder.Build();
}

Status Dataset::AppendSnapshot(Timestamp t,
                               const std::vector<SnapshotPoint>& points) {
  if (points.empty()) return Status::OK();
  if (!records_.empty() && t <= time_range_.end) {
    return Status::Invalid("AppendSnapshot tick " + std::to_string(t) +
                           " is not past the dataset end " +
                           std::to_string(time_range_.end));
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].oid <= points[i - 1].oid) {
      return Status::Invalid(
          "AppendSnapshot points must be sorted by oid and duplicate-free");
    }
  }
  // The trailing extent entry (== records_.size()) becomes the start of the
  // new tick's extent; a default-constructed dataset does not have it yet.
  if (extents_.empty()) extents_.push_back(0);
  timestamps_.push_back(t);
  // No exact-size reserve here: push_back's geometric growth keeps a long
  // append stream linear instead of reallocating the whole array per tick.
  for (const SnapshotPoint& p : points) {
    records_.push_back(PointRecord{t, p.oid, p.x, p.y});
    object_ids_.insert(p.oid);
  }
  extents_.push_back(records_.size());
  time_range_ = {timestamps_.front(), t};
  return Status::OK();
}

std::vector<SnapshotPoint> SnapshotPoints(const Dataset& dataset,
                                          Timestamp t) {
  const auto snap = dataset.Snapshot(t);
  std::vector<SnapshotPoint> points;
  points.reserve(snap.size());
  for (const PointRecord& rec : snap) {
    points.push_back(SnapshotPoint{rec.oid, rec.x, rec.y});
  }
  return points;
}

std::string Dataset::DebugString() const {
  std::ostringstream os;
  os << "Dataset{points=" << num_points() << ", objects=" << num_objects()
     << ", ticks=[" << time_range_.start << ", " << time_range_.end << "]}";
  return os.str();
}

Dataset DatasetBuilder::Build() {
  Dataset ds;
  std::stable_sort(rows_.begin(), rows_.end(), RecordKeyLess);
  rows_.erase(std::unique(rows_.begin(), rows_.end(),
                          [](const PointRecord& a, const PointRecord& b) {
                            return a.t == b.t && a.oid == b.oid;
                          }),
              rows_.end());
  ds.records_ = std::move(rows_);
  rows_.clear();

  for (size_t i = 0; i < ds.records_.size(); ++i) {
    const PointRecord& rec = ds.records_[i];
    if (i == 0 || rec.t != ds.records_[i - 1].t) {
      ds.timestamps_.push_back(rec.t);
      ds.extents_.push_back(i);
    }
    ds.object_ids_.insert(rec.oid);
  }
  ds.extents_.push_back(ds.records_.size());
  if (!ds.records_.empty()) {
    ds.time_range_ = {ds.timestamps_.front(), ds.timestamps_.back()};
  }
  return ds;
}

}  // namespace k2
