// Coordinate-free movement data: per-tick co-location (proximity) pairs, the
// input of the Namiot-style Bluetooth/Wi-Fi convoy workload. Where Dataset
// stores `<t, oid, x, y>` rows, ProximityLog stores `<t, oid_a, oid_b>` pairs
// ("a and b were within radio range at tick t") and serves them as per-tick
// adjacency snapshots (SnapshotEdges) — the graph analogue of the
// SnapshotPoint span a Dataset snapshot yields.
#ifndef K2_MODEL_PROXIMITY_H_
#define K2_MODEL_PROXIMITY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "model/dataset.h"

namespace k2 {

/// One co-location observation: objects `a` and `b` were in proximity at
/// tick `t`. Canonical form has a < b; FromRecords canonicalizes.
struct PairRecord {
  Timestamp t = 0;
  ObjectId a = 0;
  ObjectId b = 0;

  friend bool operator==(const PairRecord& x, const PairRecord& y) {
    return x.t == y.t && x.a == y.a && x.b == y.b;
  }
};

/// Ordering by composite key (t, a, b): the clustered-index order.
inline bool PairKeyLess(const PairRecord& x, const PairRecord& y) {
  if (x.t != y.t) return x.t < y.t;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

/// One tick's proximity graph as a CSR view into a ProximityLog: `nodes` are
/// the oids incident to at least one pair at the tick (ascending), and row i
/// of the adjacency lists the neighbours of nodes[i] (ascending, symmetric,
/// no self-loops). Views are invalidated by destroying the owning log.
struct SnapshotEdges {
  std::span<const ObjectId> nodes;
  // nodes.size() + 1 monotone offsets into the log's global neighbour array;
  // use Row() rather than indexing neighbours directly.
  std::span<const size_t> offsets;
  std::span<const ObjectId> neighbors;

  size_t num_nodes() const { return nodes.size(); }
  /// Undirected edge count (each pair stored in both directions).
  size_t num_edges() const { return neighbors.size() / 2; }
  bool empty() const { return nodes.empty(); }

  /// Neighbours of nodes[i], ascending.
  std::span<const ObjectId> Row(size_t i) const {
    const size_t base = offsets.front();
    return neighbors.subspan(offsets[i] - base, offsets[i + 1] - offsets[i]);
  }

  /// Index of `oid` in `nodes`, or npos when absent. Binary search.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t IndexOf(ObjectId oid) const;
};

/// Immutable time-ordered co-location log with a per-timestamp extent
/// directory, so one tick's proximity graph is an O(1) CSR slice.
class ProximityLog {
 public:
  ProximityLog() = default;

  /// Builds a log from raw observations in any order. Pairs are
  /// canonicalized (a > b swapped so a < b), self-loops (a == b) are
  /// dropped, and duplicate (t, a, b) keys are deduplicated.
  static ProximityLog FromRecords(std::vector<PairRecord> records);

  bool empty() const { return num_pairs_ == 0; }
  /// Distinct canonical (t, a, b) pairs in the log.
  uint64_t num_pairs() const { return num_pairs_; }
  /// Distinct object ids across all ticks.
  size_t num_objects() const { return object_ids_.size(); }
  TimeRange time_range() const { return time_range_; }
  /// Distinct timestamps that carry at least one pair, ascending.
  const std::vector<Timestamp>& timestamps() const { return timestamps_; }

  /// The proximity graph at tick `t`; an empty view when the tick carries
  /// no pairs.
  SnapshotEdges EdgesAt(Timestamp t) const;

  /// The log as canonical records in (t, a, b) order (round-trips through
  /// FromRecords; the serialization shape of io/proximity_io).
  std::vector<PairRecord> ToRecords() const;

  /// Presence dataset: one `(t, oid, 0, 0)` point per object incident to at
  /// least one pair at tick t. This is what flows through the (unchanged)
  /// Store engines so the miners' fetch paths, IO accounting, and WAL-backed
  /// durability all work on proximity data; the CoLocationGraphClusterer
  /// joins fetched presence back against EdgesAt(t) for the edges.
  Dataset PresenceDataset() const;

  /// One-line summary: pairs, objects, tick range.
  std::string DebugString() const;

 private:
  // CSR-of-CSR layout. Per tick i in [0, timestamps_.size()):
  //   nodes_[node_extents_[i] .. node_extents_[i+1])   sorted incident oids
  // and per global node index j, its neighbour row is
  //   neighbors_[nbr_offsets_[j] .. nbr_offsets_[j+1]).
  std::vector<Timestamp> timestamps_;
  std::vector<size_t> node_extents_;  // timestamps_.size() + 1 entries
  std::vector<ObjectId> nodes_;
  std::vector<size_t> nbr_offsets_;  // nodes_.size() + 1 entries
  std::vector<ObjectId> neighbors_;
  std::unordered_set<ObjectId> object_ids_;
  TimeRange time_range_{0, -1};
  uint64_t num_pairs_ = 0;
};

}  // namespace k2

#endif  // K2_MODEL_PROXIMITY_H_
