#include "common/thread_pool.h"

#include <algorithm>

namespace k2 {

namespace {

// Which worker of which pool the current thread is; null outside any pool.
// Lets Submit route nested submissions to the submitting worker's own deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;

// Whether the current thread is executing a ParallelFor body, and under
// which slot. A nested ParallelFor runs inline under the enclosing slot, so
// slot-keyed scratch state stays exclusive to one thread.
thread_local bool tls_in_parallel_for = false;
thread_local size_t tls_parallel_slot = 0;

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  size_t n = num_workers > 0
                 ? static_cast<size_t>(num_workers)
                 : std::max(1u, std::thread::hardware_concurrency());
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    // Same lost-wakeup guard as Submit: setting stop_ under wake_mu_ means
    // a worker between its wait-predicate check and its sleep cannot miss
    // the shutdown notification.
    MutexLock lock(wake_mu_);
    stop_.store(true);
  }
  wake_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  if (tls_pool == this) {
    target = tls_worker;  // nested submit: stay on the submitting worker
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  // queued_ goes up BEFORE the task becomes poppable, and a popping worker
  // raises inflight_ before lowering queued_ — so queued_ + inflight_ never
  // dips to zero while a task exists, which is what Wait() relies on.
  queued_.fetch_add(1, std::memory_order_release);
  {
    MutexLock lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // Empty critical section pairs with the wait predicate: a worker between
    // its predicate check and its sleep cannot miss this notification.
    MutexLock lock(wake_mu_);
  }
  wake_cv_.NotifyOne();
}

bool ThreadPool::PopFrom(size_t queue_index, bool lifo,
                         std::function<void()>* task) {
  WorkerQueue& q = *queues_[queue_index];
  MutexLock lock(q.mu);
  if (q.tasks.empty()) return false;
  if (lifo) {
    *task = std::move(q.tasks.back());
    q.tasks.pop_back();
  } else {
    *task = std::move(q.tasks.front());
    q.tasks.pop_front();
  }
  return true;
}

bool ThreadPool::TryRunOneTask(size_t self) {
  std::function<void()> task;
  // Own deque first (newest task: still cache-warm), then steal the oldest
  // task from the other deques, scanning from a self-dependent start so
  // thieves spread out.
  bool found = PopFrom(self, /*lifo=*/true, &task);
  for (size_t k = 1; !found && k < queues_.size(); ++k) {
    found = PopFrom((self + k) % queues_.size(), /*lifo=*/false, &task);
  }
  if (!found) return false;
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  task();
  if (inflight_.fetch_sub(1, std::memory_order_release) == 1 &&
      queued_.load(std::memory_order_acquire) == 0) {
    MutexLock lock(wake_mu_);
    idle_cv_.NotifyAll();
  }
  return true;
}

void ThreadPool::WorkerMain(size_t index) {
  tls_pool = this;
  tls_worker = index;
  while (true) {
    if (TryRunOneTask(index)) continue;
    MutexLock lock(wake_mu_);
    while (!stop_.load(std::memory_order_acquire) &&
           queued_.load(std::memory_order_acquire) == 0) {
      wake_cv_.Wait(wake_mu_);
    }
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  // Calling from a worker would self-deadlock; workers never need Wait()
  // because ParallelFor tracks its own completion.
  MutexLock lock(wake_mu_);
  while (queued_.load(std::memory_order_acquire) != 0 ||
         inflight_.load(std::memory_order_acquire) != 0) {
    idle_cv_.Wait(wake_mu_);
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n = 0;
    Mutex mu;
    CondVar cv;
    std::exception_ptr error K2_GUARDED_BY(mu);
  };
  if (tls_pool == this || tls_in_parallel_for) {
    // Nested ParallelFor (from a pool task, or from the calling thread's
    // own loop body): run inline under the enclosing invocation's slot.
    // Blocking a worker on helper tasks that might sit behind it in its
    // own deque could deadlock, spawning helpers would alias the outer
    // invocation's slots, and inline execution is always correct.
    for (size_t i = 0; i < n; ++i) fn(tls_parallel_slot, i);
    return;
  }
  auto state = std::make_shared<SharedState>();
  state->n = n;

  // `fn` is captured by reference: a leftover helper task that fires after
  // ParallelFor returned claims an index >= n and exits without touching it.
  auto run = [state, &fn](size_t slot) {
    const bool prev_in = tls_in_parallel_for;
    const size_t prev_slot = tls_parallel_slot;
    tls_in_parallel_for = true;
    tls_parallel_slot = slot;
    while (true) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) break;
      try {
        fn(slot, i);
      } catch (...) {
        MutexLock lock(state->mu);
        if (state->error == nullptr) state->error = std::current_exception();
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->n) {
        MutexLock lock(state->mu);
        state->cv.NotifyAll();
      }
    }
    tls_in_parallel_for = prev_in;
    tls_parallel_slot = prev_slot;
  };

  // Slot 0 is the calling thread; helpers get slots 1..num_workers(). Each
  // helper claims indices from the shared counter until none remain, so a
  // helper that starts late (or never runs because the loop is already done)
  // exits immediately.
  const size_t helpers = std::min(num_workers(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([run, h] { run(h + 1); });
  }
  run(0);
  MutexLock lock(state->mu);
  while (state->done.load(std::memory_order_acquire) != state->n) {
    state->cv.Wait(state->mu);
  }
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelFor(n, [&fn](size_t, size_t i) { fn(i); });
}

}  // namespace k2
