// Core scalar types shared by every module of the k/2-hop library.
#ifndef K2_COMMON_TYPES_H_
#define K2_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace k2 {

/// Identifier of a moving object. Object ids are dense small integers in all
/// generated datasets, but nothing in the library relies on density.
using ObjectId = uint32_t;

/// Discrete time instant (a "tick"). Datasets are sampled on a uniform grid,
/// so consecutive timestamps differ by 1. Negative values are valid.
using Timestamp = int32_t;

/// Sentinel for "no timestamp".
inline constexpr Timestamp kInvalidTimestamp =
    std::numeric_limits<Timestamp>::min();

/// One row of movement data: object `oid` was at planar position (x, y)
/// metres at time instant `t`. This is the `<oid, x, y, t>` schema of the
/// paper (Sec. 3.2) with time first so that the natural record order is the
/// clustered-index order `(t, oid)` used by all storage engines.
struct PointRecord {
  Timestamp t = 0;
  ObjectId oid = 0;
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const PointRecord& a, const PointRecord& b) {
    return a.t == b.t && a.oid == b.oid && a.x == b.x && a.y == b.y;
  }
};

/// Ordering by composite key (t, oid): the clustered-index order.
inline bool RecordKeyLess(const PointRecord& a, const PointRecord& b) {
  if (a.t != b.t) return a.t < b.t;
  return a.oid < b.oid;
}

/// A point as seen inside one snapshot (timestamp implied by context).
struct SnapshotPoint {
  ObjectId oid = 0;
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const SnapshotPoint& a, const SnapshotPoint& b) {
    return a.oid == b.oid && a.x == b.x && a.y == b.y;
  }
};

/// Inclusive time interval [start, end].
struct TimeRange {
  Timestamp start = 0;
  Timestamp end = -1;

  /// Number of ticks in the range; 0 when empty.
  int64_t length() const {
    return end < start ? 0 : static_cast<int64_t>(end) - start + 1;
  }
  bool empty() const { return end < start; }
  bool Contains(Timestamp t) const { return t >= start && t <= end; }

  friend bool operator==(const TimeRange& a, const TimeRange& b) {
    return a.start == b.start && a.end == b.end;
  }
};

/// Axis-aligned planar rectangle with inclusive bounds — the region
/// predicate of the serving layer's spatial queries ("which convoys pass
/// through R?"). Default-constructed rects are empty, mirroring TimeRange.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = -1.0;
  double max_y = -1.0;

  bool empty() const { return max_x < min_x || max_y < min_y; }
  bool Contains(double x, double y) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

class SnapshotClusterer;

/// User parameters of the FC convoy mining problem (Def. 8): minimum convoy
/// size `m`, minimum lifespan length `k` (in ticks), and the DBSCAN distance
/// threshold `eps` (metres).
struct MiningParams {
  int m = 2;
  int k = 2;
  double eps = 1.0;
  /// Snapshot-clustering implementation the miners call through (borrowed,
  /// not owned; must outlive every mining run using these params). nullptr
  /// selects the default geometric (DBSCAN) clusterer — see
  /// cluster/clusterer.h. `eps` is interpreted by the clusterer: the
  /// geometric implementations read it as the DBSCAN radius, the
  /// co-location graph clusterer ignores it entirely.
  const SnapshotClusterer* clusterer = nullptr;

  /// True when the parameters describe a well-posed mining problem for the
  /// default geometric clusterer. Prefer ValidateMiningParams()
  /// (cluster/clusterer.h), which is clusterer-aware and returns named
  /// errors.
  bool Valid() const { return m >= 2 && k >= 2 && eps > 0.0; }

  std::string DebugString() const;
};

}  // namespace k2

#endif  // K2_COMMON_TYPES_H_
