// Fig. 7c — k2-RDBMS vs k2-LSMT on the Brinkhoff workload (the largest
// dataset), absolute seconds per k. Paper: k2-LSMT wins on the largest
// dataset; VCoDA could not finish on it at all. Also reports the LSMT
// per-tier read fan-out (tables consulted vs bloom-skipped per tier), the
// access-path detail behind the LSMT column.
#include <sstream>

#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

namespace {

// "a/b/c" across tiers 0..n-1; "-" when the store never charged a tier.
std::string TierVector(const std::vector<uint64_t>& v) {
  if (v.empty()) return "-";
  std::ostringstream os;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << "/";
    os << v[i];
  }
  return os.str();
}

}  // namespace

int main() {
  PrintBanner("Fig 7c: k2-RDBMS vs k2-LSMT (Brinkhoff)");
  const Dataset& data = Brinkhoff();
  std::cout << data.DebugString() << "\n";
  std::cout << "VCoDA on this dataset: "
            << (VcodaExceedsMemoryBudget(data)
                    ? "DNF (exceeds modelled memory budget, as in the paper)"
                    : "would fit")
            << "\n\n";

  auto rdbms = BuildStore(StoreKind::kBPlusTree, data, "fig7c");
  auto lsmt = BuildStore(StoreKind::kLsm, data, "fig7c");

  TablePrinter table({"k", "k2-RDBMS", "k2-LSMT", "convoys"});
  TablePrinter fanout(
      {"k", "tables/tier (0/1/...)", "bloom-skips/tier", "touched", "skipped"});
  for (int k : {200, 400, 600, 800, 1000, 1200}) {
    const MiningParams params{3, k, 60.0};
    const MineOutcome r = RunK2(rdbms.get(), params);
    const IoStats before = lsmt->io_stats();
    const MineOutcome l = RunK2(lsmt.get(), params);
    const IoStats tier_io = IoStats::Delta(lsmt->io_stats(), before);
    table.AddRow({std::to_string(k), Fmt(r.seconds), Fmt(l.seconds),
                  std::to_string(r.convoys)});
    fanout.AddRow({std::to_string(k), TierVector(tier_io.tier_sstables_touched),
                   TierVector(tier_io.tier_bloom_skipped),
                   std::to_string(tier_io.sstables_touched),
                   std::to_string(tier_io.bloom_negative)});
  }
  table.Print();
  std::cout << "\nLSMT per-tier read fan-out (tier 0 = freshest flushes):\n";
  fanout.Print();
  return 0;
}
