// Prints the SIMD dispatch decision for this process on one line, e.g.
//   simd dispatch: avx2 (cpu max avx2, K2_SIMD unset)
// CI and the bench snapshot scripts run this so every log records which
// kernel implementations produced its numbers.
#include <cstdio>
#include <cstdlib>

#include "common/simd.h"

int main() {
  const char* env = std::getenv("K2_SIMD");
  std::printf("simd dispatch: %s (cpu max %s, K2_SIMD %s)\n",
              k2::simd::LevelName(k2::simd::ActiveLevel()),
              k2::simd::LevelName(k2::simd::MaxSupportedLevel()),
              env != nullptr ? env : "unset");
  return 0;
}
