// In-memory store: a thin adaptor over Dataset. Serves as the test oracle
// for the disk engines and as the "everything fits in RAM" upper bound that
// the sequential baselines of the paper implicitly assume.
#ifndef K2_STORAGE_MEMORY_STORE_H_
#define K2_STORAGE_MEMORY_STORE_H_

#include <string>
#include <vector>

#include "storage/store.h"

namespace k2 {

class MemoryStore final : public Store {
 public:
  MemoryStore() = default;
  /// Convenience: construct pre-loaded.
  explicit MemoryStore(Dataset dataset);

  std::string name() const override { return "memory"; }
  Status BulkLoad(const Dataset& dataset) override;
  Status Append(Timestamp t, const std::vector<SnapshotPoint>& points) override;
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override;
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override;
  TimeRange time_range() const override { return dataset_.time_range(); }
  const std::vector<Timestamp>& timestamps() const override {
    return dataset_.timestamps();
  }
  uint64_t num_points() const override { return dataset_.num_points(); }

  /// Native snapshot: reads the immutable Dataset directly — fully
  /// concurrent, no shared mutable state between handles.
  Result<std::unique_ptr<Store>> CreateReadSnapshot() override;

  const Dataset& dataset() const { return dataset_; }

 private:
  Dataset dataset_;
};

}  // namespace k2

#endif  // K2_STORAGE_MEMORY_STORE_H_
