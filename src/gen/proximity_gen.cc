#include "gen/proximity_gen.h"

#include "common/rng.h"

namespace k2 {

ProximityLog GeneratePlantedProximity(const PlantedProximitySpec& spec) {
  Rng rng(spec.seed);
  std::vector<PairRecord> records;

  // Assign ids: group members first, then noise.
  ObjectId next_id = 0;
  std::vector<std::pair<ObjectId, ObjectId>> group_ids;  // [first, last]
  group_ids.reserve(spec.groups.size());
  for (const PlantedProximityGroup& g : spec.groups) {
    group_ids.emplace_back(next_id, next_id + g.size - 1);
    next_id += static_cast<ObjectId>(g.size);
  }
  const ObjectId total =
      next_id + static_cast<ObjectId>(spec.num_noise_objects);

  std::vector<ObjectId> pool;  // objects not in an active clique this tick
  for (Timestamp t = 0; t < spec.num_ticks; ++t) {
    pool.clear();
    for (size_t gi = 0; gi < spec.groups.size(); ++gi) {
      const PlantedProximityGroup& g = spec.groups[gi];
      const auto [lo, hi] = group_ids[gi];
      if (t >= g.start && t <= g.end) {
        for (ObjectId a = lo; a <= hi; ++a) {
          for (ObjectId b = a + 1; b <= hi; ++b) {
            records.push_back(PairRecord{t, a, b});
          }
        }
      } else {
        for (ObjectId a = lo; a <= hi; ++a) pool.push_back(a);
      }
    }
    for (ObjectId a = next_id; a < total; ++a) pool.push_back(a);
    for (size_t i = 0; i < pool.size(); ++i) {
      for (size_t j = i + 1; j < pool.size(); ++j) {
        if (rng.Bernoulli(spec.noise_pair_prob)) {
          records.push_back(PairRecord{t, pool[i], pool[j]});
        }
      }
    }
  }
  return ProximityLog::FromRecords(std::move(records));
}

}  // namespace k2
