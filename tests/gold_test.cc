// Tests for the brute-force oracles themselves on hand-verifiable cases,
// including the convoy-vs-FC-convoy distinctions of the paper's Fig. 2
// discussion (objects connected through a non-member are convoys but not
// fully connected convoys).
#include <gtest/gtest.h>

#include "baselines/gold.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;
using ::k2::testing::MakeTracks;

TEST(GoldTest, EmptyDataset) {
  const MiningParams params{2, 2, 1.0};
  EXPECT_TRUE(GoldMaximalConvoys(DatasetBuilder().Build(), params).empty());
  EXPECT_TRUE(
      GoldFullyConnectedConvoys(DatasetBuilder().Build(), params).empty());
}

TEST(GoldTest, SimpleConvoyIsBothPcAndFc) {
  const Dataset ds = MakeTracks({{0, 0, 0}, {0.5, 0.5, 0.5}});
  const MiningParams params{2, 3, 1.0};
  EXPECT_SAME_CONVOYS(GoldMaximalConvoys(ds, params),
                      std::vector<Convoy>{C({0, 1}, 0, 2)});
  EXPECT_SAME_CONVOYS(GoldFullyConnectedConvoys(ds, params),
                      std::vector<Convoy>{C({0, 1}, 0, 2)});
}

TEST(GoldTest, BridgedPairIsConvoyButNotFullyConnected) {
  // The paper's ({x,y,z},[1,5])-style case collapsed to three objects:
  // 0 and 2 sit 1.8 apart (eps = 1) and are density-connected only through
  // object 1 in the middle — at every tick.
  const Dataset ds = MakeTracks({{0, 0, 0}, {0.9, 0.9, 0.9}, {1.8, 1.8, 1.8}});
  const MiningParams params{2, 3, 1.0};
  // Partially connected: the whole chain is one maximal convoy.
  EXPECT_SAME_CONVOYS(GoldMaximalConvoys(ds, params),
                      std::vector<Convoy>{C({0, 1, 2}, 0, 2)});
  // Fully connected: {0,2} alone does not cluster (1.8 > eps), but the whole
  // chain and the adjacent pairs do; maximality keeps the chain only.
  EXPECT_SAME_CONVOYS(GoldFullyConnectedConvoys(ds, params),
                      std::vector<Convoy>{C({0, 1, 2}, 0, 2)});
}

TEST(GoldTest, TemporaryBridgeSplitsFcLifespan) {
  // Objects 0,2 are bridged by 1 only at ticks 0-2; at tick 3 the bridge
  // leaves but 0,2 drift within eps of each other.
  const Dataset ds = MakeTracks({
      {0.0, 0.0, 0.0, 0.0},
      {0.9, 0.9, 0.9, 50.0},  // bridge leaves at t=3
      {1.8, 1.8, 1.8, 0.5},   // comes close to 0 at t=3
  });
  const MiningParams params{2, 2, 1.0};
  const auto fc = GoldFullyConnectedConvoys(ds, params);
  // FC: only the full chain qualifies — {0,2} needs the bridge during
  // [0,2] and is together on its own only at tick 3 (too short).
  EXPECT_SAME_CONVOYS(fc, std::vector<Convoy>{C({0, 1, 2}, 0, 2)});
  // Partially connected additionally has ({0,2},[0,3]): bridged through
  // object 1 at ticks 0-2, directly together at tick 3.
  const std::vector<Convoy> pc_expected = {C({0, 1, 2}, 0, 2),
                                           C({0, 2}, 0, 3)};
  EXPECT_SAME_CONVOYS(GoldMaximalConvoys(ds, params), pc_expected);
}

TEST(GoldTest, FcConvoyCanOutliveItsSuperset) {
  // {0,1} together for 6 ticks; object 2 joins only for the middle 4.
  const Dataset ds = MakeTracks({
      {0, 0, 0, 0, 0, 0},
      {0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
      {90, 1.0, 1.0, 1.0, 1.0, 90},
  });
  const MiningParams params{2, 3, 1.0};
  const auto fc = GoldFullyConnectedConvoys(ds, params);
  const std::vector<Convoy> expected = {C({0, 1}, 0, 5), C({0, 1, 2}, 1, 4)};
  EXPECT_SAME_CONVOYS(fc, expected);
}

TEST(GoldTest, MinimumSizeMRespected) {
  const Dataset ds = MakeTracks({{0, 0, 0}, {0.5, 0.5, 0.5}});
  EXPECT_TRUE(GoldMaximalConvoys(ds, {3, 2, 1.0}).empty());
  EXPECT_TRUE(GoldFullyConnectedConvoys(ds, {3, 2, 1.0}).empty());
}

TEST(GoldTest, GapInPresenceBreaksRun) {
  const Dataset ds = MakeTracks({{0, 0, ::k2::testing::kGone, 0, 0},
                                 {0.5, 0.5, ::k2::testing::kGone, 0.5, 0.5}});
  const MiningParams params{2, 2, 1.0};
  const std::vector<Convoy> expected = {C({0, 1}, 0, 1), C({0, 1}, 3, 4)};
  EXPECT_SAME_CONVOYS(GoldMaximalConvoys(ds, params), expected);
}

TEST(GoldTest, EveryFcConvoyIsAlsoAConvoy) {
  // Lemma 1 on a busy random instance: each maximal FC convoy must be a
  // sub-convoy of some maximal (partially connected) convoy.
  std::vector<std::vector<double>> tracks;
  for (int i = 0; i < 8; ++i) {
    std::vector<double> track;
    for (int t = 0; t < 12; ++t) {
      track.push_back(((i * 7 + t * 3) % 10) * 0.8);
    }
    tracks.push_back(track);
  }
  const Dataset ds = MakeTracks(tracks);
  const MiningParams params{2, 3, 1.0};
  const auto pc = GoldMaximalConvoys(ds, params);
  const auto fc = GoldFullyConnectedConvoys(ds, params);
  for (const Convoy& v : fc) {
    bool dominated = false;
    for (const Convoy& w : pc) {
      if (v.IsSubConvoyOf(w)) dominated = true;
    }
    EXPECT_TRUE(dominated) << v.DebugString();
  }
}

}  // namespace
}  // namespace k2
