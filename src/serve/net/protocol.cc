#include "serve/net/protocol.h"

#include <cstring>

#include "common/crc32c.h"

namespace k2::net {
namespace {

// Fixed-width primitives are memcpy'd in host byte order — the same
// assumption the WAL and SSTable formats make (every supported target is
// little-endian; a big-endian port would swap here and in storage/lsm).
template <typename T>
void Put(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

/// Bounds-checked sequential reader over a body. Any short read marks the
/// cursor failed; callers check ok() once at the end (reads after a failure
/// return zero values and never touch out-of-bounds memory).
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  template <typename T>
  T Read() {
    T v{};
    if (pos_ + sizeof(T) > data_.size()) {
      failed_ = true;
      return v;
    }
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view ReadBytes(size_t n) {
    if (pos_ + n > data_.size()) {
      failed_ = true;
      return {};
    }
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  bool ok() const { return !failed_; }
  bool exhausted() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

Status Malformed(const char* what) {
  return Status::Invalid(std::string("MalformedBody: ") + what);
}

/// Shared tail check of every Parse*: the body must be consumed exactly.
Status FinishParse(const Cursor& cur, const char* type) {
  if (!cur.ok())
    return Malformed((std::string(type) + " body is shorter than its "
                                          "declared content")
                         .c_str());
  if (!cur.exhausted())
    return Malformed(
        (std::string(type) + " body has trailing bytes").c_str());
  return Status::OK();
}

}  // namespace

bool IsValidMessageType(uint8_t v) {
  return v >= static_cast<uint8_t>(MessageType::kHello) &&
         v <= static_cast<uint8_t>(MessageType::kError);
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello:
      return "Hello";
    case MessageType::kHelloOk:
      return "HelloOk";
    case MessageType::kPing:
      return "Ping";
    case MessageType::kPong:
      return "Pong";
    case MessageType::kIngest:
      return "Ingest";
    case MessageType::kIngestOk:
      return "IngestOk";
    case MessageType::kPublish:
      return "Publish";
    case MessageType::kPublishOk:
      return "PublishOk";
    case MessageType::kQuery:
      return "Query";
    case MessageType::kTopK:
      return "TopK";
    case MessageType::kConvoys:
      return "Convoys";
    case MessageType::kStats:
      return "Stats";
    case MessageType::kStatsOk:
      return "StatsOk";
    case MessageType::kShutdown:
      return "Shutdown";
    case MessageType::kShutdownOk:
      return "ShutdownOk";
    case MessageType::kError:
      return "Error";
  }
  return "Unknown";
}

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kBadCrc:
      return "BadCrc";
    case WireError::kOversizeFrame:
      return "OversizeFrame";
    case WireError::kTruncatedFrame:
      return "TruncatedFrame";
    case WireError::kBadVersion:
      return "BadVersion";
    case WireError::kBadMessageType:
      return "BadMessageType";
    case WireError::kMalformedBody:
      return "MalformedBody";
    case WireError::kUnexpectedMessage:
      return "UnexpectedMessage";
    case WireError::kIngestRejected:
      return "IngestRejected";
    case WireError::kShuttingDown:
      return "ShuttingDown";
    case WireError::kInternalError:
      return "InternalError";
  }
  return "Unknown";
}

std::string EncodeFrame(MessageType type, uint32_t request_id,
                        std::string_view body) {
  std::string payload;
  payload.reserve(kMessageHeaderBytes + body.size());
  Put<uint8_t>(&payload, static_cast<uint8_t>(kProtocolVersion));
  Put<uint8_t>(&payload, static_cast<uint8_t>(type));
  Put<uint16_t>(&payload, 0);  // reserved
  Put<uint32_t>(&payload, request_id);
  payload.append(body);

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  Put<uint32_t>(&frame, Crc32c(payload.data(), payload.size()));
  Put<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

void FrameReader::Feed(const void* data, size_t n) {
  if (failed_) return;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), n);
}

FrameReader::Poll FrameReader::Fail(WireError error, std::string message) {
  failed_ = true;
  error_ = error;
  error_message_ = std::move(message);
  return Poll::kError;
}

FrameReader::Poll FrameReader::Next(Frame* out) {
  if (failed_) return Poll::kError;
  if (buffered() < kFrameHeaderBytes) return Poll::kNeedMore;
  const char* base = buffer_.data() + consumed_;
  uint32_t crc = 0;
  uint32_t len = 0;
  std::memcpy(&crc, base, sizeof(crc));
  std::memcpy(&len, base + sizeof(crc), sizeof(len));
  if (len > max_payload_)
    return Fail(WireError::kOversizeFrame,
                "frame payload of " + std::to_string(len) +
                    " bytes exceeds the cap of " +
                    std::to_string(max_payload_));
  if (len < kMessageHeaderBytes)
    return Fail(WireError::kTruncatedFrame,
                "frame payload of " + std::to_string(len) +
                    " bytes cannot hold the 8-byte message header");
  if (buffered() < kFrameHeaderBytes + len) return Poll::kNeedMore;
  const char* payload = base + kFrameHeaderBytes;
  if (Crc32c(payload, len) != crc)
    return Fail(WireError::kBadCrc, "frame checksum mismatch");

  const uint8_t version = static_cast<uint8_t>(payload[0]);
  const uint8_t type = static_cast<uint8_t>(payload[1]);
  if (version != kProtocolVersion)
    return Fail(WireError::kBadVersion,
                "protocol version " + std::to_string(version) +
                    " is not supported (this build speaks " +
                    std::to_string(kProtocolVersion) + ")");
  if (!IsValidMessageType(type))
    return Fail(WireError::kBadMessageType,
                "message type " + std::to_string(type) + " is not defined");

  out->version = version;
  out->type = static_cast<MessageType>(type);
  std::memcpy(&out->request_id, payload + 4, sizeof(uint32_t));
  out->body.assign(payload + kMessageHeaderBytes, len - kMessageHeaderBytes);
  consumed_ += kFrameHeaderBytes + len;
  return Poll::kFrame;
}

// --- typed bodies ---------------------------------------------------------

std::string EncodeHello(const HelloRequest& hello) {
  std::string body;
  Put<uint16_t>(&body, hello.min_version);
  Put<uint16_t>(&body, hello.max_version);
  return body;
}

Result<HelloRequest> ParseHello(std::string_view body) {
  Cursor cur(body);
  HelloRequest hello;
  hello.min_version = cur.Read<uint16_t>();
  hello.max_version = cur.Read<uint16_t>();
  K2_RETURN_NOT_OK(FinishParse(cur, "Hello"));
  if (hello.min_version > hello.max_version)
    return Malformed("Hello min_version exceeds max_version");
  return hello;
}

std::string EncodeHelloOk(uint16_t version) {
  std::string body;
  Put<uint16_t>(&body, version);
  return body;
}

Result<uint16_t> ParseHelloOk(std::string_view body) {
  Cursor cur(body);
  const uint16_t version = cur.Read<uint16_t>();
  K2_RETURN_NOT_OK(FinishParse(cur, "HelloOk"));
  return version;
}

std::string EncodeIngest(Timestamp t, std::span<const SnapshotPoint> points) {
  std::string body;
  body.reserve(8 + points.size() * 20);
  Put<int32_t>(&body, t);
  Put<uint32_t>(&body, static_cast<uint32_t>(points.size()));
  for (const SnapshotPoint& p : points) {
    Put<uint32_t>(&body, p.oid);
    Put<double>(&body, p.x);
    Put<double>(&body, p.y);
  }
  return body;
}

Result<IngestRequest> ParseIngest(std::string_view body) {
  Cursor cur(body);
  IngestRequest req;
  req.t = cur.Read<int32_t>();
  const uint32_t count = cur.Read<uint32_t>();
  if (!cur.ok()) return Malformed("Ingest body is shorter than its header");
  // 20 bytes per point; checked up front so a lying count cannot drive the
  // reserve below past the actual body size.
  if (cur.remaining() != static_cast<size_t>(count) * 20)
    return Malformed("Ingest point count does not match body length");
  req.points.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SnapshotPoint p;
    p.oid = cur.Read<uint32_t>();
    p.x = cur.Read<double>();
    p.y = cur.Read<double>();
    req.points.push_back(p);
  }
  K2_RETURN_NOT_OK(FinishParse(cur, "Ingest"));
  return req;
}

std::string EncodeIngestAck(const IngestAck& ack) {
  std::string body;
  Put<int32_t>(&body, ack.frontier);
  Put<uint64_t>(&body, ack.closed_convoys);
  return body;
}

Result<IngestAck> ParseIngestAck(std::string_view body) {
  Cursor cur(body);
  IngestAck ack;
  ack.frontier = cur.Read<int32_t>();
  ack.closed_convoys = cur.Read<uint64_t>();
  K2_RETURN_NOT_OK(FinishParse(cur, "IngestOk"));
  return ack;
}

std::string EncodePublishAck(const PublishAck& ack) {
  std::string body;
  Put<uint64_t>(&body, ack.epoch);
  Put<uint64_t>(&body, ack.convoys);
  return body;
}

Result<PublishAck> ParsePublishAck(std::string_view body) {
  Cursor cur(body);
  PublishAck ack;
  ack.epoch = cur.Read<uint64_t>();
  ack.convoys = cur.Read<uint64_t>();
  K2_RETURN_NOT_OK(FinishParse(cur, "PublishOk"));
  return ack;
}

namespace {

constexpr uint8_t kQueryHasObject = 1u << 0;
constexpr uint8_t kQueryHasWindow = 1u << 1;
constexpr uint8_t kQueryHasRegion = 1u << 2;
constexpr uint8_t kQueryKnownMask =
    kQueryHasObject | kQueryHasWindow | kQueryHasRegion;

void EncodeQueryInto(std::string* body, const ConvoyQuery& query) {
  uint8_t mask = 0;
  if (query.object.has_value()) mask |= kQueryHasObject;
  if (query.time_window.has_value()) mask |= kQueryHasWindow;
  if (query.region.has_value()) mask |= kQueryHasRegion;
  Put<uint8_t>(body, mask);
  if (query.object.has_value()) Put<uint32_t>(body, *query.object);
  if (query.time_window.has_value()) {
    Put<int32_t>(body, query.time_window->start);
    Put<int32_t>(body, query.time_window->end);
  }
  if (query.region.has_value()) {
    Put<double>(body, query.region->min_x);
    Put<double>(body, query.region->min_y);
    Put<double>(body, query.region->max_x);
    Put<double>(body, query.region->max_y);
  }
}

Result<ConvoyQuery> ParseQueryFrom(Cursor* cur) {
  ConvoyQuery query;
  const uint8_t mask = cur->Read<uint8_t>();
  if (cur->ok() && (mask & ~kQueryKnownMask) != 0)
    return Malformed("Query predicate mask has undefined bits set");
  if (mask & kQueryHasObject) query.object = cur->Read<uint32_t>();
  if (mask & kQueryHasWindow) {
    TimeRange window;
    window.start = cur->Read<int32_t>();
    window.end = cur->Read<int32_t>();
    query.time_window = window;
  }
  if (mask & kQueryHasRegion) {
    Rect region;
    region.min_x = cur->Read<double>();
    region.min_y = cur->Read<double>();
    region.max_x = cur->Read<double>();
    region.max_y = cur->Read<double>();
    query.region = region;
  }
  return query;
}

}  // namespace

std::string EncodeQuery(const ConvoyQuery& query) {
  std::string body;
  EncodeQueryInto(&body, query);
  return body;
}

Result<ConvoyQuery> ParseQuery(std::string_view body) {
  Cursor cur(body);
  K2_ASSIGN_OR_RETURN(ConvoyQuery query, ParseQueryFrom(&cur));
  K2_RETURN_NOT_OK(FinishParse(cur, "Query"));
  return query;
}

std::string EncodeTopK(const TopKRequest& request) {
  std::string body;
  Put<uint8_t>(&body, static_cast<uint8_t>(request.rank));
  Put<uint32_t>(&body, request.k);
  EncodeQueryInto(&body, request.query);
  return body;
}

Result<TopKRequest> ParseTopK(std::string_view body) {
  Cursor cur(body);
  TopKRequest request;
  const uint8_t rank = cur.Read<uint8_t>();
  if (cur.ok() && rank > static_cast<uint8_t>(ConvoyRank::kLargest))
    return Malformed("TopK rank is not a defined ConvoyRank");
  request.rank = static_cast<ConvoyRank>(rank);
  request.k = cur.Read<uint32_t>();
  K2_ASSIGN_OR_RETURN(request.query, ParseQueryFrom(&cur));
  K2_RETURN_NOT_OK(FinishParse(cur, "TopK"));
  return request;
}

std::string EncodeConvoys(std::span<const Convoy> convoys) {
  std::string body;
  size_t bytes = 4;
  for (const Convoy& v : convoys) bytes += 12 + v.objects.size() * 4;
  body.reserve(bytes);
  Put<uint32_t>(&body, static_cast<uint32_t>(convoys.size()));
  for (const Convoy& v : convoys) {
    Put<int32_t>(&body, v.start);
    Put<int32_t>(&body, v.end);
    Put<uint32_t>(&body, static_cast<uint32_t>(v.objects.size()));
    for (ObjectId oid : v.objects) Put<uint32_t>(&body, oid);
  }
  return body;
}

Result<std::vector<Convoy>> ParseConvoys(std::string_view body) {
  Cursor cur(body);
  const uint32_t count = cur.Read<uint32_t>();
  std::vector<Convoy> convoys;
  for (uint32_t i = 0; cur.ok() && i < count; ++i) {
    Convoy v;
    v.start = cur.Read<int32_t>();
    v.end = cur.Read<int32_t>();
    const uint32_t nobj = cur.Read<uint32_t>();
    if (!cur.ok()) break;
    if (cur.remaining() < static_cast<size_t>(nobj) * 4)
      return Malformed("Convoys object count exceeds body length");
    std::vector<ObjectId> ids;
    ids.reserve(nobj);
    for (uint32_t j = 0; j < nobj; ++j) ids.push_back(cur.Read<uint32_t>());
    // The wire carries the set in its canonical sorted order; FromSorted
    // would DCHECK on hostile input, so go through the sorting constructor.
    v.objects = ObjectSet(std::move(ids));
    convoys.push_back(std::move(v));
  }
  K2_RETURN_NOT_OK(FinishParse(cur, "Convoys"));
  return convoys;
}

std::string EncodeServerStats(const ServerStats& stats) {
  std::string body;
  Put<uint64_t>(&body, stats.epoch);
  Put<uint64_t>(&body, stats.catalog_convoys);
  Put<int32_t>(&body, stats.frontier);
  Put<uint64_t>(&body, stats.ticks_ingested);
  Put<uint64_t>(&body, stats.closed_convoys);
  return body;
}

Result<ServerStats> ParseServerStats(std::string_view body) {
  Cursor cur(body);
  ServerStats stats;
  stats.epoch = cur.Read<uint64_t>();
  stats.catalog_convoys = cur.Read<uint64_t>();
  stats.frontier = cur.Read<int32_t>();
  stats.ticks_ingested = cur.Read<uint64_t>();
  stats.closed_convoys = cur.Read<uint64_t>();
  K2_RETURN_NOT_OK(FinishParse(cur, "StatsOk"));
  return stats;
}

std::string EncodeError(WireError error, std::string_view message) {
  std::string body;
  // Error text is bounded so a reply always fits one modest frame.
  const size_t len = std::min<size_t>(message.size(), 0xffff);
  Put<uint8_t>(&body, static_cast<uint8_t>(error));
  Put<uint16_t>(&body, static_cast<uint16_t>(len));
  body.append(message.substr(0, len));
  return body;
}

Result<ErrorReply> ParseError(std::string_view body) {
  Cursor cur(body);
  ErrorReply reply;
  const uint8_t code = cur.Read<uint8_t>();
  if (cur.ok() && (code < static_cast<uint8_t>(WireError::kBadCrc) ||
                   code > static_cast<uint8_t>(WireError::kInternalError)))
    return Malformed("Error code is not a defined WireError");
  reply.error = static_cast<WireError>(code);
  const uint16_t len = cur.Read<uint16_t>();
  reply.message = std::string(cur.ReadBytes(len));
  K2_RETURN_NOT_OK(FinishParse(cur, "Error"));
  return reply;
}

Status ErrorReplyStatus(const ErrorReply& reply) {
  const std::string text = std::string("wire error ") +
                           WireErrorName(reply.error) + ": " + reply.message;
  switch (reply.error) {
    case WireError::kIngestRejected:
    case WireError::kShuttingDown:
      return Status::Invalid(text);
    case WireError::kInternalError:
      return Status::Internal(text);
    default:
      return Status::Invalid(text);
  }
}

}  // namespace k2::net
