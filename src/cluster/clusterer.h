// The pluggable snapshot-clustering seam every miner calls through. A
// SnapshotClusterer answers the two data-access patterns of k/2-hop
// (Sec. 5) — full-snapshot clustering at benchmark points and restricted
// re-clustering of candidate objects elsewhere — against the Store
// interface, and owns the definition of "density-connected" for its
// substrate:
//
//   GeometricClusterer      point-radius DBSCAN over (x, y) coordinates —
//                           the paper's Def. 2 and the default. GridIndex +
//                           SIMD eps-scan fast path, unchanged.
//   CoLocationGraphClusterer / EpsGraphClusterer (cluster/graph_clusterer.h)
//                           graph DBSCAN over proximity pairs — the
//                           coordinate-free workload.
//
// Implementations must be immutable after construction: one clusterer
// instance is shared by every mining thread, and all mutable working state
// lives in the caller-owned SnapshotScratch (one per thread). To add a
// clusterer, implement Cluster/ReCluster against the same store fetch
// helpers (respecting store_mu) and keep the output contract: canonical
// lexicographically-sorted ObjectSets, each of size >= params.m.
#ifndef K2_CLUSTER_CLUSTERER_H_
#define K2_CLUSTER_CLUSTERER_H_

#include <string>
#include <vector>

#include "cluster/dbscan.h"
#include "cluster/graph_core.h"
#include "common/mutex.h"
#include "common/object_set.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

/// Reusable per-thread state for store-backed clustering: the fetched-points
/// buffer plus the per-substrate scratches. One SnapshotScratch serves one
/// thread; create one per worker when clustering concurrently.
struct SnapshotScratch {
  std::vector<SnapshotPoint> points;
  DbscanScratch dbscan;
  GraphClusterScratch graph;
};

/// Interface of one snapshot-clustering substrate. Thread-compatible:
/// const methods may run concurrently from many threads as long as each
/// passes its own scratch (and a shared store_mu when the store itself is
/// shared — only the fetch is serialized; clustering runs outside the lock).
class SnapshotClusterer {
 public:
  virtual ~SnapshotClusterer() = default;

  /// Short stable identifier ("geometric", "colocation-graph", ...) used in
  /// logs, bench rows, and the K2_CLUSTERER env override.
  virtual std::string name() const = 0;

  /// Validates the parts of `params` this substrate interprets. The common
  /// m/k checks are shared (ValidateMiningParams); this hook adds
  /// substrate-specific ones (e.g. eps > 0 for the geometric clusterers).
  virtual Status ValidateParams(const MiningParams& /*params*/) const {
    return Status::OK();
  }

  /// Scans the full snapshot at `t` and returns its clusters (canonical
  /// order, size >= params.m).
  virtual Result<std::vector<ObjectSet>> Cluster(
      Store* store, Timestamp t, const MiningParams& params,
      SnapshotScratch* scratch, Mutex* store_mu = nullptr) const = 0;

  /// reCluster(DB[t]|O): the restricted path — fetches only the points of
  /// `objects` at `t` (random point reads) and clusters them.
  virtual Result<std::vector<ObjectSet>> ReCluster(
      Store* store, Timestamp t, const ObjectSet& objects,
      const MiningParams& params, SnapshotScratch* scratch,
      Mutex* store_mu = nullptr) const = 0;
};

/// The default substrate: point-radius DBSCAN over coordinates, identical
/// in every byte of output (and every allocation) to the pre-seam code.
class GeometricClusterer final : public SnapshotClusterer {
 public:
  std::string name() const override { return "geometric"; }
  Status ValidateParams(const MiningParams& params) const override;
  Result<std::vector<ObjectSet>> Cluster(
      Store* store, Timestamp t, const MiningParams& params,
      SnapshotScratch* scratch, Mutex* store_mu = nullptr) const override;
  Result<std::vector<ObjectSet>> ReCluster(
      Store* store, Timestamp t, const ObjectSet& objects,
      const MiningParams& params, SnapshotScratch* scratch,
      Mutex* store_mu = nullptr) const override;
};

/// The process-wide default clusterer (a static GeometricClusterer, unless
/// the K2_CLUSTERER environment variable selects another registered
/// substrate — "geometric" or "epsgraph" — which is how CI runs the whole
/// differential tier through the graph implementation).
const SnapshotClusterer* DefaultClusterer();

/// params.clusterer if set, else DefaultClusterer(). Never null.
const SnapshotClusterer* ResolveClusterer(const MiningParams& params);

/// Clusterer-aware parameter validation used at every public miner entry
/// point: named errors for m < 2 and k < 2, then the resolved clusterer's
/// ValidateParams (eps <= 0 for geometric substrates). For default params
/// this accepts exactly the set MiningParams::Valid() accepts.
Status ValidateMiningParams(const MiningParams& params);

// Store fetch helpers shared by clusterer implementations: serialize on
// `store_mu` when non-null (Store implementations are not thread-safe).
Status LockedScanTimestamp(Store* store, Timestamp t,
                           std::vector<SnapshotPoint>* out,
                           Mutex* store_mu);
Status LockedGetPoints(Store* store, Timestamp t, const ObjectSet& objects,
                       std::vector<SnapshotPoint>* out, Mutex* store_mu);

}  // namespace k2

#endif  // K2_CLUSTER_CLUSTERER_H_
