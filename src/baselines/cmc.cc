#include "baselines/cmc.h"

#include <unordered_map>

#include "cluster/store_clustering.h"

namespace k2 {

ClustersAtFn StoreClustersFn(Store* store, const MiningParams& params) {
  return [store, params](Timestamp t, std::vector<ObjectSet>* out) -> Status {
    K2_ASSIGN_OR_RETURN(*out, ClusterSnapshot(store, t, params));
    return Status::OK();
  };
}

Result<std::vector<Convoy>> MineCmc(Store* store, const MiningParams& params) {
  K2_RETURN_NOT_OK(ValidateMiningParams(params));
  const TimeRange range = store->time_range();
  auto clusters_at = StoreClustersFn(store, params);

  struct Candidate {
    ObjectSet set;
    Timestamp start;
  };
  std::vector<Candidate> active;
  std::vector<Convoy> results;
  std::vector<ObjectSet> clusters;

  for (Timestamp t = range.start; t <= range.end; ++t) {
    clusters.clear();
    K2_RETURN_NOT_OK(clusters_at(t, &clusters));
    std::vector<Candidate> next;
    std::vector<bool> candidate_matched(active.size(), false);
    std::vector<bool> cluster_matched(clusters.size(), false);
    for (size_t vi = 0; vi < active.size(); ++vi) {
      for (size_t ci = 0; ci < clusters.size(); ++ci) {
        ObjectSet x = ObjectSet::Intersect(active[vi].set, clusters[ci]);
        if (x.size() < static_cast<size_t>(params.m)) continue;
        candidate_matched[vi] = true;
        cluster_matched[ci] = true;
        next.push_back(Candidate{std::move(x), active[vi].start});
      }
    }
    for (size_t vi = 0; vi < active.size(); ++vi) {
      if (!candidate_matched[vi] &&
          t - active[vi].start >= params.k) {  // length (t-1) - start + 1 >= k
        results.emplace_back(active[vi].set, active[vi].start, t - 1);
      }
    }
    // The bug: clusters that matched some candidate do NOT start fresh
    // candidates (compare sweep.cc, which always adds them).
    for (size_t ci = 0; ci < clusters.size(); ++ci) {
      if (!cluster_matched[ci]) {
        next.push_back(Candidate{clusters[ci], t});
      }
    }
    // Deduplicate identical (set, start) pairs that arise from multiple
    // intersections.
    std::unordered_map<ObjectSet, Timestamp, ObjectSetHash> dedup;
    for (Candidate& c : next) {
      auto [it, inserted] = dedup.try_emplace(std::move(c.set), c.start);
      if (!inserted && c.start < it->second) it->second = c.start;
    }
    active.clear();
    for (auto& [set, start] : dedup) active.push_back(Candidate{set, start});
  }
  for (const Candidate& c : active) {
    if (range.end - c.start + 1 >= params.k) {
      results.emplace_back(c.set, c.start, range.end);
    }
  }
  return FilterMaximal(std::move(results));
}

Result<std::vector<Convoy>> MinePccd(Store* store,
                                     const MiningParams& params) {
  K2_RETURN_NOT_OK(ValidateMiningParams(params));
  SweepOptions options;
  options.min_length = params.k;
  return MaximalConvoySweep(StoreClustersFn(store, params),
                            store->time_range(), params.m, options);
}

}  // namespace k2
