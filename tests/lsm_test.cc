// White-box tests for the LSM engine: skip list, bloom filter, SSTable
// format, flush/compaction lifecycle, newest-wins versioning.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "gen/synthetic.h"
#include "storage/key.h"
#include "storage/lsm/bloom.h"
#include "storage/lsm/skiplist.h"
#include "storage/lsm/sstable.h"
#include "storage/lsm_store.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::ScratchDir;
using lsm::BloomFilter;
using lsm::LsmValue;
using lsm::SkipList;
using lsm::SSTable;
using lsm::SSTableBuilder;

// ---------------------------------------------------------------------------
// SkipList
// ---------------------------------------------------------------------------

TEST(SkipListTest, PutGet) {
  SkipList list;
  list.Put(5, {1.0, 2.0});
  list.Put(1, {3.0, 4.0});
  LsmValue v;
  EXPECT_TRUE(list.Get(5, &v));
  EXPECT_DOUBLE_EQ(v.x, 1.0);
  EXPECT_TRUE(list.Get(1, &v));
  EXPECT_DOUBLE_EQ(v.y, 4.0);
  EXPECT_FALSE(list.Get(3, &v));
  EXPECT_EQ(list.size(), 2u);
}

TEST(SkipListTest, OverwriteKeepsSize) {
  SkipList list;
  list.Put(7, {1, 1});
  list.Put(7, {2, 2});
  EXPECT_EQ(list.size(), 1u);
  LsmValue v;
  ASSERT_TRUE(list.Get(7, &v));
  EXPECT_DOUBLE_EQ(v.x, 2.0);
}

TEST(SkipListTest, OrderedScan) {
  SkipList list;
  for (uint64_t k : {50, 10, 30, 20, 40}) list.Put(k, {double(k), 0});
  std::vector<uint64_t> keys;
  list.Scan(15, 45, [&](uint64_t k, const LsmValue&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<uint64_t>{20, 30, 40}));
}

TEST(SkipListTest, ManyKeysStaySorted) {
  SkipList list;
  for (uint64_t i = 0; i < 5000; ++i) list.Put((i * 2654435761u) % 100000, {0, 0});
  uint64_t prev = 0;
  bool first = true;
  list.ForEach([&](uint64_t k, const LsmValue&) {
    if (!first) {
      EXPECT_GT(k, prev);
    }
    prev = k;
    first = false;
  });
}

TEST(SkipListTest, ClearEmptiesList) {
  SkipList list;
  list.Put(1, {0, 0});
  list.Clear();
  EXPECT_TRUE(list.empty());
  LsmValue v;
  EXPECT_FALSE(list.Get(1, &v));
}

// ---------------------------------------------------------------------------
// BloomFilter
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1000);
  for (uint64_t k = 0; k < 1000; ++k) bloom.Add(k * 7919);
  for (uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(bloom.MayContain(k * 7919));
}

TEST(BloomFilterTest, FalsePositiveRateIsLow) {
  BloomFilter bloom(1000, 10);
  for (uint64_t k = 0; k < 1000; ++k) bloom.Add(k);
  int fp = 0;
  for (uint64_t k = 1000000; k < 1010000; ++k) {
    if (bloom.MayContain(k)) ++fp;
  }
  EXPECT_LT(fp, 500);  // ~1% expected at 10 bits/key; 5% safety bound
}

TEST(BloomFilterTest, SerializationRoundTrip) {
  BloomFilter bloom(100);
  for (uint64_t k = 0; k < 100; ++k) bloom.Add(k * 31);
  // Round-trip through the raw on-disk num_hashes word, whose top bit
  // carries the probe layout.
  BloomFilter copy =
      BloomFilter::FromWords(bloom.words(), bloom.num_hashes_for_disk());
  for (uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(copy.MayContain(k * 31));
}

TEST(BloomFilterTest, LegacyFlatLayoutStaysReadable) {
  // A filter persisted without the blocked-layout flag (pre-blocked-era
  // file) must keep the flat probe order: build one via FromWords, Add
  // through the flat path, and verify membership.
  BloomFilter flat =
      BloomFilter::FromWords(std::vector<uint64_t>(16, 0), 7);
  for (uint64_t k = 0; k < 50; ++k) flat.Add(k * 131);
  for (uint64_t k = 0; k < 50; ++k) EXPECT_TRUE(flat.MayContain(k * 131));
}

// ---------------------------------------------------------------------------
// SSTable
// ---------------------------------------------------------------------------

TEST(SSTableTest, BuildOpenGetScan) {
  const std::string dir = ScratchDir("sstable");
  const std::string path = dir + "/t1.sst";
  SSTableBuilder builder(path);
  builder.Reserve(1000);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(builder.Add(k * 3, {double(k), double(-k)}).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  IoStats stats;
  auto open = SSTable::Open(path, 1, &stats);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  std::unique_ptr<SSTable> table = open.MoveValue();
  EXPECT_EQ(table->num_entries(), 1000u);
  EXPECT_EQ(table->min_key(), 0u);
  EXPECT_EQ(table->max_key(), 2997u);

  LsmValue v;
  auto hit = table->Get(300, &v);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value());
  EXPECT_DOUBLE_EQ(v.x, 100.0);
  auto miss = table->Get(301, &v);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value());

  std::vector<uint64_t> keys;
  ASSERT_TRUE(
      table->Scan(100, 200, [&](uint64_t k, const LsmValue&) { keys.push_back(k); })
          .ok());
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front(), 102u);
  EXPECT_EQ(keys.back(), 198u);
}

TEST(SSTableTest, RejectsOutOfOrderKeys) {
  const std::string path = ScratchDir("sstable_order") + "/t.sst";
  SSTableBuilder builder(path);
  ASSERT_TRUE(builder.Add(10, {0, 0}).ok());
  EXPECT_FALSE(builder.Add(10, {0, 0}).ok());
  EXPECT_FALSE(builder.Add(5, {0, 0}).ok());
}

TEST(SSTableTest, BloomShortCircuitsMisses) {
  const std::string path = ScratchDir("sstable_bloom") + "/t.sst";
  SSTableBuilder builder(path);
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(builder.Add(k * 2, {0, 0}).ok());
  ASSERT_TRUE(builder.Finish().ok());
  IoStats stats;
  auto table = SSTable::Open(path, 1, &stats).MoveValue();
  LsmValue v;
  int bloom_skips = 0;
  for (uint64_t k = 1; k < 999; k += 2) {  // all absent, inside key range
    ASSERT_TRUE(table->Get(k, &v).ok());
    bloom_skips = static_cast<int>(stats.bloom_negative);
  }
  EXPECT_GT(bloom_skips, 400);  // most misses never touch a data block
}

// ---------------------------------------------------------------------------
// LsmStore
// ---------------------------------------------------------------------------

TEST(LsmStoreTest, FlushProducesSSTables) {
  LsmStore::Options options;
  options.memtable_limit = 100;
  LsmStore store(ScratchDir("lsm_flush"), options);
  for (Timestamp t = 0; t < 50; ++t) {
    for (ObjectId o = 0; o < 10; ++o) {
      ASSERT_TRUE(store.Put(t, o, t, o).ok());
    }
  }
  EXPECT_GT(store.num_sstables(), 0u);
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_EQ(store.memtable_entries(), 0u);
  EXPECT_EQ(store.num_points(), 500u);
}

TEST(LsmStoreTest, CompactionMergesTiers) {
  LsmStore::Options options;
  options.memtable_limit = 64;
  options.tier_fanout = 2;
  LsmStore store(ScratchDir("lsm_compact"), options);
  for (Timestamp t = 0; t < 100; ++t) {
    for (ObjectId o = 0; o < 8; ++o) ASSERT_TRUE(store.Put(t, o, t, o).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_GT(store.compactions_run(), 0u);
  // All data still readable after compaction.
  std::vector<SnapshotPoint> out;
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(store.ScanTimestamp(t, &out).ok());
    ASSERT_EQ(out.size(), 8u) << "tick " << t;
  }
}

// Regression test for a guard-aliasing hazard the thread-safety annotation
// pass flushed out (runs under the sanitize-tsan CI job): the background
// worker used to pass &io_stats_ straight into SSTable::Open while mu_ was
// dropped around flush/compaction IO — a live sink pointer into mu_-guarded
// state held across the unlocked window, so the moment Open (or anything
// reached from it) charges the sink, it races every foreground scan
// charging the same struct under mu_. The fix opens each freshly built
// table against a job-local IoStats and only accumulates + re-points the
// sink (SSTable::set_io_sink) after re-taking mu_. This test keeps the
// interleaving hot — a tiny memtable keeps the worker opening tables while
// a dedicated reader charges io_stats() nonstop — so TSan fires if the
// unlocked window ever touches the shared counters again.
TEST(LsmStoreTest, BackgroundOpenDoesNotRaceForegroundIoAccounting) {
  LsmStore::Options options;
  options.memtable_limit = 16;  // rotate constantly: keep the worker opening
  options.tier_fanout = 2;
  ASSERT_TRUE(options.background_compaction);  // the racing thread
  LsmStore store(ScratchDir("lsm_io_race"), options);
  // Prime some tables so the reader has disk IO to charge from tick 0.
  for (Timestamp t = 0; t < 40; ++t) {
    for (ObjectId o = 0; o < 4; ++o) ASSERT_TRUE(store.Put(t, o, t, o).ok());
  }
  // A dedicated reader hammers table scans (each charges io_stats() under
  // mu_) for the whole run, so a worker-side unlocked write to the same
  // struct overlaps a reader access and trips TSan. LsmStore's internal
  // locking makes the concurrent reads safe — this is a white-box test of
  // exactly that property.
  std::atomic<bool> done{false};
  std::atomic<bool> read_failed{false};
  std::thread reader([&] {
    std::vector<SnapshotPoint> out;
    uint64_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (!store.ScanTimestamp(static_cast<Timestamp>(i++ % 40), &out).ok()) {
        read_failed.store(true);
        return;
      }
    }
  });
  for (Timestamp t = 40; t < 400; ++t) {
    for (ObjectId o = 0; o < 4; ++o) {
      ASSERT_TRUE(store.Put(t, o, t, o).ok());
    }
  }
  ASSERT_TRUE(store.Flush().ok());
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(read_failed.load());
  EXPECT_EQ(store.num_points(), 1600u);
  // Open-time IO of published tables still lands in the foreground account,
  // never in background_io_stats() (which only holds merge-input reads).
  EXPECT_GT(store.io_stats().bytes_read, 0u);
}

TEST(LsmStoreTest, NewestVersionWinsAcrossMemtableAndTables) {
  LsmStore store(ScratchDir("lsm_version"));
  ASSERT_TRUE(store.Put(0, 1, 1.0, 1.0).ok());
  ASSERT_TRUE(store.Flush().ok());          // version 1 on disk
  ASSERT_TRUE(store.Put(0, 1, 2.0, 2.0).ok());  // version 2 in memtable
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store.ScanTimestamp(0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].x, 2.0);
  ASSERT_TRUE(store.GetPoints(0, ObjectSet::Of({1}), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].x, 2.0);

  // Flush both and let compaction resolve versions on disk too.
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(store.ScanTimestamp(0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].x, 2.0);
}

TEST(LsmStoreTest, BulkLoadRunsThroughWritePath) {
  RandomWalkSpec spec;
  spec.num_objects = 30;
  spec.num_ticks = 200;  // 6000 rows
  spec.seed = 5;
  const Dataset ds = GenerateRandomWalk(spec);
  LsmStore::Options options;
  options.memtable_limit = 1000;
  LsmStore store(ScratchDir("lsm_bulk"), options);
  ASSERT_TRUE(store.BulkLoad(ds).ok());
  EXPECT_GT(store.num_sstables(), 1u);  // several flushes happened
  EXPECT_EQ(store.num_points(), ds.num_points());
}

TEST(LsmStoreTest, TimestampsTrackInserts) {
  LsmStore store(ScratchDir("lsm_ticks"));
  ASSERT_TRUE(store.Put(5, 1, 0, 0).ok());
  ASSERT_TRUE(store.Put(2, 1, 0, 0).ok());
  ASSERT_TRUE(store.Put(5, 2, 0, 0).ok());
  EXPECT_EQ(store.timestamps(), (std::vector<Timestamp>{2, 5}));
  EXPECT_EQ(store.time_range(), (TimeRange{2, 5}));
}

TEST(LsmStoreTest, TimestampsStaySortedUnderOutOfOrderPuts) {
  // The tick list is maintained eagerly on Put (timestamps() used to
  // rebuild it lazily inside a const method — a data race under concurrent
  // metadata reads), so it must stay correct for any insertion order.
  LsmStore store(ScratchDir("lsm_ticks"));
  for (Timestamp t : {5, 3, 9, 3, 7, 1, 9}) {
    ASSERT_TRUE(store.Put(t, 1, 0.0, 0.0).ok());
  }
  EXPECT_EQ(store.timestamps(), (std::vector<Timestamp>{1, 3, 5, 7, 9}));
  EXPECT_EQ(store.time_range(), (TimeRange{1, 9}));
  // timestamps() on a const ref must not mutate anything.
  const LsmStore& cref = store;
  EXPECT_EQ(cref.timestamps().size(), 5u);
}

TEST(LsmStoreTest, WalSegmentRotationBySizeAndMultiSegmentReplay) {
  const std::string dir = ScratchDir("lsm_wal_rotate");
  LsmStore::Options options;
  options.memtable_limit = 1 << 20;  // never rotate the memtable
  options.background_compaction = false;
  options.wal.segment_bytes = 256;  // a handful of ticks per segment
  {
    LsmStore store(dir, options);
    ASSERT_TRUE(store.init_status().ok());
    EXPECT_EQ(store.active_wal_segments(), 1u);
    for (Timestamp t = 0; t < 40; ++t) {
      std::vector<SnapshotPoint> points;
      for (ObjectId o = 0; o < 4; ++o) {
        points.push_back(SnapshotPoint{o, double(t), double(o)});
      }
      ASSERT_TRUE(store.Append(t, points).ok());
    }
    // The cap is far below 40 ticks of frames, so the active memtable must
    // now be fed by a chain of rotated segments.
    EXPECT_GT(store.active_wal_segments(), 1u);
    EXPECT_EQ(store.num_sstables(), 0u);  // all 160 rows live in WAL only
    // Destroyed without Flush: recovery must replay the whole chain.
  }
  for (int reopen = 0; reopen < 2; ++reopen) {
    // Second reopen proves orphan deletion spared the live rotated
    // segments the first recovery re-adopted.
    LsmStore store(dir, options);
    ASSERT_TRUE(store.init_status().ok()) << store.init_status().ToString();
    EXPECT_EQ(store.num_points(), 160u) << "reopen " << reopen;
    std::vector<SnapshotPoint> out;
    for (Timestamp t = 0; t < 40; ++t) {
      ASSERT_TRUE(store.ScanTimestamp(t, &out).ok());
      ASSERT_EQ(out.size(), 4u) << "tick " << t << " reopen " << reopen;
      EXPECT_DOUBLE_EQ(out[0].x, double(t));
    }
  }
}

TEST(LsmStoreTest, WalSegmentChainResetsWhenMemtableRotates) {
  LsmStore::Options options;
  options.memtable_limit = 1 << 20;
  options.background_compaction = false;
  options.wal.segment_bytes = 128;
  LsmStore store(ScratchDir("lsm_wal_reset"), options);
  for (Timestamp t = 0; t < 20; ++t) {
    ASSERT_TRUE(store.Put(t, 0, t, 0).ok());
  }
  EXPECT_GT(store.active_wal_segments(), 1u);
  // A memtable rotation seals the whole chain with it; the fresh memtable
  // starts over on a single new segment.
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_EQ(store.active_wal_segments(), 1u);
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store.ScanTimestamp(7, &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

TEST(LsmStoreTest, BloomAblationStillCorrect) {
  LsmStore::Options options;
  options.use_bloom = false;
  options.memtable_limit = 50;
  LsmStore store(ScratchDir("lsm_nobloom"), options);
  for (Timestamp t = 0; t < 30; ++t) {
    for (ObjectId o = 0; o < 5; ++o) ASSERT_TRUE(store.Put(t, o, t, o).ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  std::vector<SnapshotPoint> out;
  ASSERT_TRUE(store.GetPoints(10, ObjectSet::Of({0, 3, 9}), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(store.io_stats().bloom_negative, 0u);
}

}  // namespace
}  // namespace k2
