// Unit tests for the candidate sweep on hand-built cluster sequences.
#include <map>

#include <gtest/gtest.h>

#include "baselines/sweep.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;

/// Fixed cluster script: tick -> cluster list.
ClustersAtFn Script(std::map<Timestamp, std::vector<ObjectSet>> script) {
  return [script = std::move(script)](Timestamp t,
                                      std::vector<ObjectSet>* out) -> Status {
    auto it = script.find(t);
    *out = it == script.end() ? std::vector<ObjectSet>{} : it->second;
    return Status::OK();
  };
}

std::vector<Convoy> RunSweep(std::map<Timestamp, std::vector<ObjectSet>> script,
                        TimeRange range, int m, SweepOptions options) {
  auto result = MaximalConvoySweep(Script(std::move(script)), range, m, options);
  K2_CHECK(result.ok());
  return result.MoveValue();
}

TEST(SweepTest, SingleStableConvoy) {
  const ObjectSet abc = ObjectSet::Of({1, 2, 3});
  auto out = RunSweep({{0, {abc}}, {1, {abc}}, {2, {abc}}}, {0, 2}, 2,
                 SweepOptions{.min_length = 2});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], C({1, 2, 3}, 0, 2));
}

TEST(SweepTest, GapTerminatesConvoy) {
  const ObjectSet ab = ObjectSet::Of({1, 2});
  auto out = RunSweep({{0, {ab}}, {1, {ab}}, {3, {ab}}, {4, {ab}}}, {0, 4}, 2,
                 SweepOptions{.min_length = 2});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], C({1, 2}, 0, 1));
  EXPECT_EQ(out[1], C({1, 2}, 3, 4));
}

TEST(SweepTest, ShrinkEmitsSuperset) {
  // {1,2,3} together at 0-1, then only {1,2} continue.
  const ObjectSet abc = ObjectSet::Of({1, 2, 3});
  const ObjectSet ab = ObjectSet::Of({1, 2});
  auto out = RunSweep({{0, {abc}}, {1, {abc}}, {2, {ab}}, {3, {ab}}}, {0, 3}, 2,
                 SweepOptions{.min_length = 2});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], C({1, 2, 3}, 0, 1));
  EXPECT_EQ(out[1], C({1, 2}, 0, 3));
}

TEST(SweepTest, ConvoyStartingInsideBiggerCluster) {
  // The CMC-bug scenario: {4,5} ride inside {1,2,3,4,5} at tick 0-1, the
  // big cluster dies but {4,5} continue; the corrected sweep must catch
  // ({4,5},[0,3]).
  const ObjectSet big = ObjectSet::Of({1, 2, 3, 4, 5});
  const ObjectSet de = ObjectSet::Of({4, 5});
  auto out = RunSweep({{0, {big}}, {1, {big}}, {2, {de}}, {3, {de}}}, {0, 3}, 2,
                 SweepOptions{.min_length = 3});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], C({4, 5}, 0, 3));
}

TEST(SweepTest, SplitIntoTwoConvoys) {
  const ObjectSet abcd = ObjectSet::Of({1, 2, 3, 4});
  const ObjectSet ab = ObjectSet::Of({1, 2});
  const ObjectSet cd = ObjectSet::Of({3, 4});
  auto out = RunSweep({{0, {abcd}}, {1, {abcd}}, {2, {ab, cd}}, {3, {ab, cd}}},
                 {0, 3}, 2, SweepOptions{.min_length = 2});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], C({1, 2, 3, 4}, 0, 1));
  EXPECT_EQ(out[1], C({1, 2}, 0, 3));
  EXPECT_EQ(out[2], C({3, 4}, 0, 3));
}

TEST(SweepTest, MergeOfTwoClusters) {
  const ObjectSet ab = ObjectSet::Of({1, 2});
  const ObjectSet cd = ObjectSet::Of({3, 4});
  const ObjectSet abcd = ObjectSet::Of({1, 2, 3, 4});
  auto out = RunSweep({{0, {ab, cd}}, {1, {abcd}}, {2, {abcd}}}, {0, 2}, 2,
                 SweepOptions{.min_length = 2});
  // ab and cd run the full span; abcd only [1,2].
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], C({1, 2}, 0, 2));
  EXPECT_EQ(out[1], C({3, 4}, 0, 2));
  EXPECT_EQ(out[2], C({1, 2, 3, 4}, 1, 2));
}

TEST(SweepTest, MinLengthFiltersShortLived) {
  const ObjectSet ab = ObjectSet::Of({1, 2});
  auto out =
      RunSweep({{0, {ab}}, {1, {ab}}}, {0, 1}, 2, SweepOptions{.min_length = 3});
  EXPECT_TRUE(out.empty());
}

TEST(SweepTest, MinClusterSizeRespected) {
  // Intersections below m die: {1,2,3} ∩ {1,2} has size 2 < m=3.
  const ObjectSet abc = ObjectSet::Of({1, 2, 3});
  const ObjectSet ab = ObjectSet::Of({1, 2});
  auto out = RunSweep({{0, {abc}}, {1, {ab}}, {2, {ab}}}, {0, 2}, 3,
                 SweepOptions{.min_length = 1});
  // Only the singleton-tick convoy {1,2,3}@0 survives with min_length 1.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], C({1, 2, 3}, 0, 0));
}

TEST(SweepTest, BorderKeepLeft) {
  const ObjectSet ab = ObjectSet::Of({1, 2});
  SweepOptions options;
  options.min_length = 10;  // nothing passes the length filter
  options.keep_left_border = true;
  auto out = RunSweep({{5, {ab}}, {6, {ab}}}, {5, 8}, 2, options);
  // Piece starts at the left border => kept despite being short.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], C({1, 2}, 5, 6));
}

TEST(SweepTest, BorderKeepRight) {
  const ObjectSet ab = ObjectSet::Of({1, 2});
  SweepOptions options;
  options.min_length = 10;
  options.keep_right_border = true;
  auto out = RunSweep({{7, {ab}}, {8, {ab}}}, {5, 8}, 2, options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], C({1, 2}, 7, 8));
}

TEST(SweepTest, EmptyRangeYieldsNothing) {
  auto out = RunSweep({}, {0, -1}, 2, SweepOptions{.min_length = 1});
  EXPECT_TRUE(out.empty());
}

TEST(SweepTest, ReformingConvoyGetsBothRuns) {
  const ObjectSet ab = ObjectSet::Of({1, 2});
  const ObjectSet cd = ObjectSet::Of({3, 4});
  auto out = RunSweep({{0, {ab}}, {1, {ab}}, {2, {cd}}, {3, {ab}}, {4, {ab}}},
                 {0, 4}, 2, SweepOptions{.min_length = 2});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], C({1, 2}, 0, 1));
  EXPECT_EQ(out[1], C({1, 2}, 3, 4));
}

}  // namespace
}  // namespace k2
