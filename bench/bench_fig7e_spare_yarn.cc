// Fig. 7e — k/2 gain over SPARE on the "YARN cluster" setup (workers 2-16).
#include "bench/spare_gain_common.h"

int main() {
  return k2::bench::RunSpareGainFigure(
      "Fig 7e: k/2 gain over SPARE, YARN-cluster emulation (workers 2-16)",
      {2, 4, 8, 16});
}
