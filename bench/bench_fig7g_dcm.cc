// Fig. 7g — k/2 gain over DCM with 1..4 "nodes" (temporal partitions mined
// by that many workers). Paper: k/2-hop stays ahead of DCM even as nodes are
// added (up to 140x), with the gain shrinking as DCM parallelizes.
#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

int main() {
  PrintBanner("Fig 7g: k/2 gain over DCM (nodes 1-4)");

  struct Workload {
    const char* name;
    const Dataset* data;
    MiningParams params;
  };
  const std::vector<Workload> workloads = {
      {"Trucks", &Trucks(), {3, 200, 30.0}},
      {"Brinkhoff", &Brinkhoff(), {3, 200, 60.0}},
      {"TDrive", &TDrive(), {3, 200, 60.0}},
  };

  // DCM emits partially connected convoys, so k/2-hop runs without the
  // final FC validation here — the same output class.
  K2HopOptions k2_options;
  k2_options.validate = false;
  std::vector<double> k2_seconds;
  std::vector<std::unique_ptr<Store>> stores;
  for (const Workload& w : workloads) {
    auto rdbms = BuildStore(StoreKind::kBPlusTree, *w.data, "fig7g");
    k2_seconds.push_back(
        RunK2(rdbms.get(), w.params, nullptr, k2_options).seconds);
    stores.push_back(BuildStore(StoreKind::kMemory, *w.data, "fig7g"));
  }

  TablePrinter table({"nodes", "Trucks", "Brinkhoff", "TDrive"});
  for (int nodes : {1, 2, 3, 4}) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (size_t i = 0; i < workloads.size(); ++i) {
      const MineOutcome dcm =
          RunDcm(stores[i].get(), workloads[i].params, nodes, nodes);
      row.push_back(Fmt(dcm.seconds / std::max(1e-6, k2_seconds[i]), 1) + "x");
    }
    table.AddRow(row);
  }
  table.Print();
  std::cout << "(gain = DCM time at N nodes / sequential k2-RDBMS time)\n";
  return 0;
}
