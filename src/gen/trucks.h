// Trucks-like workload (paper Sec. 6.2.1): a concrete-delivery fleet around
// a metropolitan area. Trucks leave shared depots in departure waves toward
// shared construction sites, so route-sharing trucks genuinely form convoys.
// Matches the paper's convention of treating each truck-day as a distinct
// object (276 trajectories from 50 trucks).
#ifndef K2_GEN_TRUCKS_H_
#define K2_GEN_TRUCKS_H_

#include <cstdint>

#include "gen/road_network.h"
#include "model/dataset.h"

namespace k2 {

struct TrucksParams {
  int num_trajectories = 276;  ///< truck-days, each a distinct object id
  int ticks = 1320;            ///< ~11 h of movement at 30 s sampling
  int num_depots = 3;
  int num_sites = 10;
  int wave_minutes = 20;       ///< departures are grouped into waves
  double gps_noise = 3.0;      ///< metres
  RoadNetwork::GridSpec grid = {.nx = 16,
                                .ny = 16,
                                .spacing = 700.0,
                                .jitter = 60.0,
                                .highway_every = 4};
  uint64_t seed = 7;
};

/// ~num_trajectories * ticks points (366 K at the defaults, like the paper's
/// 366,202).
Dataset GenerateTrucks(const TrucksParams& params);

}  // namespace k2

#endif  // K2_GEN_TRUCKS_H_
