// Generator invariants: determinism, shape, and that planted ground truth is
// recoverable by the miners.
#include <gtest/gtest.h>

#include "baselines/gold.h"
#include "core/k2hop.h"
#include "gen/brinkhoff.h"
#include "gen/synthetic.h"
#include "gen/tdrive.h"
#include "gen/trucks.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::MakeMemStore;

TEST(RandomWalkGenTest, DeterministicForSeed) {
  RandomWalkSpec spec;
  spec.seed = 9;
  const Dataset a = GenerateRandomWalk(spec);
  const Dataset b = GenerateRandomWalk(spec);
  EXPECT_EQ(a.records(), b.records());
  spec.seed = 10;
  EXPECT_NE(GenerateRandomWalk(spec).records(), a.records());
}

TEST(RandomWalkGenTest, ShapeMatchesSpec) {
  RandomWalkSpec spec;
  spec.num_objects = 13;
  spec.num_ticks = 17;
  const Dataset ds = GenerateRandomWalk(spec);
  EXPECT_EQ(ds.num_points(), 13u * 17u);
  EXPECT_EQ(ds.num_objects(), 13u);
  EXPECT_EQ(ds.time_range(), (TimeRange{0, 16}));
  for (const PointRecord& rec : ds.records()) {
    EXPECT_GE(rec.x, 0.0);
    EXPECT_LE(rec.x, spec.area);
  }
}

TEST(PlantedConvoyGenTest, PlantedGroupIsRecoveredByK2Hop) {
  PlantedConvoySpec spec;
  spec.num_noise_objects = 10;
  spec.num_ticks = 30;
  spec.groups = {PlantedGroup{3, 5, 24, 8.0}};
  spec.member_spacing = 1.0;
  spec.seed = 3;
  const Dataset ds = GeneratePlantedConvoys(spec);
  auto store = MakeMemStore(ds);
  const MiningParams params{3, 10, 2.0};
  auto out = MineK2Hop(store.get(), params);
  ASSERT_TRUE(out.ok());
  // The planted group (ids 0,1,2) must be reported over exactly [5,24].
  bool found = false;
  for (const Convoy& v : out.value()) {
    if (v.objects == ObjectSet::Of({0, 1, 2}) && v.start == 5 && v.end == 24) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << ConvoysDebugString(out.value());
}

TEST(PlantedConvoyGenTest, TwoGroupsGetDistinctIds) {
  PlantedConvoySpec spec;
  spec.groups = {PlantedGroup{3, 0, 5, 8.0}, PlantedGroup{4, 2, 9, 8.0}};
  spec.num_noise_objects = 2;
  spec.num_ticks = 10;
  const Dataset ds = GeneratePlantedConvoys(spec);
  EXPECT_EQ(ds.num_objects(), 3u + 4u + 2u);
}

TEST(BrinkhoffGenTest, StatsReflectSimulation) {
  BrinkhoffParams params;
  params.grid.nx = 8;
  params.grid.ny = 8;
  params.max_time = 50;
  params.obj_begin = 20;
  params.obj_time = 2;
  BrinkhoffStats stats;
  const Dataset ds = GenerateBrinkhoff(params, &stats);
  EXPECT_EQ(stats.num_nodes, 64u);
  EXPECT_GT(stats.num_edges, 64u);  // grid connectivity
  EXPECT_EQ(stats.max_time, 50);
  EXPECT_GE(stats.moving_objects, 20u);
  EXPECT_EQ(stats.points, ds.num_points());
  EXPECT_GT(ds.num_points(), 500u);
  EXPECT_LE(ds.time_range().end, 49);
}

TEST(BrinkhoffGenTest, ObjectsAppearOverTime) {
  BrinkhoffParams params;
  params.grid.nx = 6;
  params.grid.ny = 6;
  params.max_time = 30;
  params.obj_begin = 5;
  params.obj_time = 3;
  const Dataset ds = GenerateBrinkhoff(params);
  // Later snapshots should generally carry more objects than tick 0 (spawn
  // rate outpaces early arrivals on a small grid).
  EXPECT_GE(ds.Snapshot(0).size(), 1u);
  EXPECT_GT(ds.num_objects(), 5u);
}

TEST(BrinkhoffGenTest, Deterministic) {
  BrinkhoffParams params;
  params.grid.nx = 6;
  params.grid.ny = 6;
  params.max_time = 20;
  params.obj_begin = 10;
  params.obj_time = 1;
  EXPECT_EQ(GenerateBrinkhoff(params).records(),
            GenerateBrinkhoff(params).records());
}

TEST(TrucksGenTest, ShapeApproximatesPaperDataset) {
  TrucksParams params;
  params.num_trajectories = 40;  // scaled down for test speed
  params.ticks = 200;
  const Dataset ds = GenerateTrucks(params);
  EXPECT_EQ(ds.num_objects(), 40u);
  EXPECT_EQ(ds.num_points(), 40u * 200u);  // every truck reports every tick
  EXPECT_EQ(ds.time_range(), (TimeRange{0, 199}));
}

TEST(TrucksGenTest, ProducesConvoys) {
  TrucksParams params;
  params.num_trajectories = 60;
  params.ticks = 300;
  params.seed = 21;
  const Dataset ds = GenerateTrucks(params);
  auto store = MakeMemStore(ds);
  K2HopOptions options;
  options.validate = false;  // partially-connected candidates suffice here
  auto out = MineK2Hop(store.get(), {2, 30, 60.0}, options);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().empty());  // waves of trucks travel together
}

TEST(TDriveGenTest, ScaleControlsFleetSize) {
  TDriveParams small;
  small.scale = 1.0 / 1024.0;
  small.ticks = 50;
  const Dataset a = GenerateTDrive(small);
  TDriveParams bigger = small;
  bigger.scale = 1.0 / 256.0;
  const Dataset b = GenerateTDrive(bigger);
  EXPECT_GT(b.num_objects(), a.num_objects());
  EXPECT_EQ(a.time_range(), (TimeRange{0, 49}));
}

TEST(TDriveGenTest, EveryTaxiReportsEveryTick) {
  TDriveParams params;
  params.scale = 1.0 / 1024.0;
  params.ticks = 40;
  const Dataset ds = GenerateTDrive(params);
  EXPECT_EQ(ds.num_points(), ds.num_objects() * 40u);
}

}  // namespace
}  // namespace k2
