#include "baselines/gold.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "cluster/dbscan.h"
#include "common/check.h"

namespace k2 {

namespace {

/// Distinct object ids of the dataset, ascending.
std::vector<ObjectId> Universe(const Dataset& dataset) {
  std::vector<ObjectId> ids;
  for (const PointRecord& rec : dataset.records()) ids.push_back(rec.oid);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

ObjectSet MaskToSet(uint32_t mask, const std::vector<ObjectId>& universe) {
  std::vector<ObjectId> ids;
  for (size_t i = 0; i < universe.size(); ++i) {
    if (mask & (1u << i)) ids.push_back(universe[i]);
  }
  return ObjectSet::FromSorted(std::move(ids));
}

/// Per tick: cluster label of every universe member (-1 = unclustered).
struct TickLabels {
  std::vector<int32_t> label;  // indexed by universe position
};

std::vector<TickLabels> FullClusterLabels(const Dataset& dataset,
                                          const std::vector<ObjectId>& universe,
                                          const MiningParams& params,
                                          TimeRange range) {
  std::unordered_map<ObjectId, size_t> position;
  for (size_t i = 0; i < universe.size(); ++i) position[universe[i]] = i;

  std::vector<TickLabels> out(static_cast<size_t>(range.length()));
  std::vector<SnapshotPoint> points;
  for (Timestamp t = range.start; t <= range.end; ++t) {
    TickLabels& labels = out[t - range.start];
    labels.label.assign(universe.size(), -1);
    points.clear();
    for (const PointRecord& rec : dataset.Snapshot(t)) {
      points.push_back(SnapshotPoint{rec.oid, rec.x, rec.y});
    }
    const std::vector<ObjectSet> clusters =
        Dbscan(points, params.eps, params.m);
    for (size_t c = 0; c < clusters.size(); ++c) {
      for (ObjectId oid : clusters[c]) {
        labels.label[position.at(oid)] = static_cast<int32_t>(c);
      }
    }
  }
  return out;
}

/// Emits the maximal runs of `ok` (indexed by tick offset) as convoys.
void EmitRuns(const std::vector<bool>& ok, const ObjectSet& objects,
              TimeRange range, int k, std::vector<Convoy>* out) {
  size_t i = 0;
  while (i < ok.size()) {
    if (!ok[i]) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j + 1 < ok.size() && ok[j + 1]) ++j;
    const auto len = static_cast<int64_t>(j - i + 1);
    if (len >= k) {
      out->emplace_back(objects, range.start + static_cast<Timestamp>(i),
                        range.start + static_cast<Timestamp>(j));
    }
    i = j + 1;
  }
}

}  // namespace

std::vector<Convoy> GoldMaximalConvoys(const Dataset& dataset,
                                       const MiningParams& params) {
  const std::vector<ObjectId> universe = Universe(dataset);
  K2_CHECK(universe.size() <= kGoldMaxObjects);
  const TimeRange range = dataset.time_range();
  if (range.empty()) return {};
  const auto labels = FullClusterLabels(dataset, universe, params, range);

  std::vector<Convoy> found;
  const uint32_t limit = 1u << universe.size();
  std::vector<bool> ok(static_cast<size_t>(range.length()));
  for (uint32_t mask = 0; mask < limit; ++mask) {
    if (std::popcount(mask) < params.m) continue;
    // ok[t] := all members present and sharing one cluster at t.
    for (size_t ti = 0; ti < ok.size(); ++ti) {
      const TickLabels& tick = labels[ti];
      int32_t shared = -2;  // -2 = unset
      bool good = true;
      for (size_t i = 0; i < universe.size() && good; ++i) {
        if (!(mask & (1u << i))) continue;
        const int32_t label = tick.label[i];
        if (label < 0) {
          good = false;
        } else if (shared == -2) {
          shared = label;
        } else if (label != shared) {
          good = false;
        }
      }
      ok[ti] = good;
    }
    EmitRuns(ok, MaskToSet(mask, universe), range, params.k, &found);
  }
  return FilterMaximal(std::move(found));
}

std::vector<Convoy> GoldFullyConnectedConvoys(const Dataset& dataset,
                                              const MiningParams& params) {
  const std::vector<ObjectId> universe = Universe(dataset);
  K2_CHECK(universe.size() <= kGoldMaxObjects);
  const TimeRange range = dataset.time_range();
  if (range.empty()) return {};
  const auto labels = FullClusterLabels(dataset, universe, params, range);

  std::vector<Convoy> found;
  const uint32_t limit = 1u << universe.size();
  std::vector<bool> ok(static_cast<size_t>(range.length()));
  std::vector<SnapshotPoint> subset_points;
  for (uint32_t mask = 0; mask < limit; ++mask) {
    if (std::popcount(mask) < params.m) continue;
    const ObjectSet objects = MaskToSet(mask, universe);
    for (size_t ti = 0; ti < ok.size(); ++ti) {
      // Cheap necessary condition first: FC together implies together in
      // the full clustering.
      const TickLabels& tick = labels[ti];
      int32_t shared = -2;
      bool together = true;
      for (size_t i = 0; i < universe.size() && together; ++i) {
        if (!(mask & (1u << i))) continue;
        const int32_t label = tick.label[i];
        if (label < 0 || (shared != -2 && label != shared)) together = false;
        shared = label;
      }
      if (!together) {
        ok[ti] = false;
        continue;
      }
      // Definition check: DB[t]|O must cluster to exactly {O}.
      const Timestamp t = range.start + static_cast<Timestamp>(ti);
      subset_points.clear();
      for (const PointRecord& rec : dataset.Snapshot(t)) {
        if (objects.Contains(rec.oid)) {
          subset_points.push_back(SnapshotPoint{rec.oid, rec.x, rec.y});
        }
      }
      const std::vector<ObjectSet> clusters =
          Dbscan(subset_points, params.eps, params.m);
      ok[ti] = clusters.size() == 1 && clusters[0] == objects;
    }
    EmitRuns(ok, objects, range, params.k, &found);
  }
  return FilterMaximal(std::move(found));
}

}  // namespace k2
