#include "cluster/store_clustering.h"

namespace k2 {

namespace {

Status LockedScan(Store* store, Timestamp t, std::vector<SnapshotPoint>* out,
                  std::mutex* store_mu) {
  if (store_mu == nullptr) return store->ScanTimestamp(t, out);
  std::lock_guard<std::mutex> lock(*store_mu);
  return store->ScanTimestamp(t, out);
}

Status LockedGet(Store* store, Timestamp t, const ObjectSet& objects,
                 std::vector<SnapshotPoint>* out, std::mutex* store_mu) {
  if (store_mu == nullptr) return store->GetPoints(t, objects, out);
  std::lock_guard<std::mutex> lock(*store_mu);
  return store->GetPoints(t, objects, out);
}

SnapshotScratch* ThreadLocalSnapshotScratch() {
  static thread_local SnapshotScratch scratch;
  return &scratch;
}

}  // namespace

Result<std::vector<ObjectSet>> ClusterSnapshot(Store* store, Timestamp t,
                                               const MiningParams& params,
                                               SnapshotScratch* scratch,
                                               std::mutex* store_mu) {
  K2_RETURN_NOT_OK(LockedScan(store, t, &scratch->points, store_mu));
  return Dbscan(scratch->points, params.eps, params.m, &scratch->dbscan);
}

Result<std::vector<ObjectSet>> ClusterSnapshot(Store* store, Timestamp t,
                                               const MiningParams& params) {
  return ClusterSnapshot(store, t, params, ThreadLocalSnapshotScratch());
}

Result<std::vector<ObjectSet>> ReCluster(Store* store, Timestamp t,
                                         const ObjectSet& objects,
                                         const MiningParams& params,
                                         SnapshotScratch* scratch,
                                         std::mutex* store_mu) {
  K2_RETURN_NOT_OK(LockedGet(store, t, objects, &scratch->points, store_mu));
  return Dbscan(scratch->points, params.eps, params.m, &scratch->dbscan);
}

Result<std::vector<ObjectSet>> ReCluster(Store* store, Timestamp t,
                                         const ObjectSet& objects,
                                         const MiningParams& params) {
  return ReCluster(store, t, objects, params, ThreadLocalSnapshotScratch());
}

}  // namespace k2
