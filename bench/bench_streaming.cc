// Streaming ingest benchmark: feeds the Trucks workload tick by tick
// through OnlineK2HopMiner (ingest routed via Store::Append) and reports
// amortized per-tick latency, the p50/p99/p999 ingest tail, and the
// Finalize() cost — against the batch MineK2Hop wall time over the same
// bulk-loaded data. The online result is differential-checked against batch
// in-process.
//
// The LSM engine runs twice: with the WAL sync deferred (store-default
// durability of the other engines — the row comparable across snapshots)
// and with wal_sync_every_append, where every tick pays an fdatasync for
// per-tick durability ("k2hop-online-durable"). Both rows keep compaction
// on the background thread, which is what the tail percentiles measure.
#include "bench/harness.h"

#include <filesystem>
#include <sstream>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/online.h"
#include "storage/lsm_store.h"

using namespace k2;
using namespace k2::bench;

namespace {

struct StreamRun {
  std::string store_name;
  std::string miner;
  std::unique_ptr<Store> store;
};

/// Streams the workload through `run.store`, checks the result against the
/// batch convoys, and emits one table row + one JSON record.
void RunStreaming(StreamRun run, const Dataset& data,
                  const MiningParams& params,
                  const std::vector<Convoy>& batch_convoys,
                  TablePrinter* table) {
  OnlineK2HopMiner miner(run.store.get(), params);
  Stopwatch sw;
  for (Timestamp t : data.timestamps()) {
    K2_CHECK_OK(miner.AppendTick(t, SnapshotPoints(data, t)));
  }
  const double ingest_seconds = sw.ElapsedSeconds();
  Stopwatch finalize_sw;
  auto result = miner.Finalize();
  const double finalize_seconds = finalize_sw.ElapsedSeconds();
  K2_CHECK(result.ok());
  K2_CHECK(result.value() == batch_convoys);  // both in canonical order
  const OnlineK2HopStats& stats = miner.stats();
  const PercentileReservoir& tail = stats.append_percentiles;

  table->AddRow(
      {run.store_name, run.miner, Fmt(ingest_seconds + finalize_seconds),
       Fmt(stats.append_latency.mean() * 1e3), Fmt(tail.Percentile(50) * 1e3),
       Fmt(tail.Percentile(99) * 1e3), Fmt(tail.Percentile(99.9) * 1e3),
       Fmt(stats.append_latency.max() * 1e3), Fmt(finalize_seconds),
       std::to_string(stats.closed_convoys),
       std::to_string(stats.open_convoys),
       std::to_string(result.value().size())});

  JsonFields extra;
  extra.Int("ticks", stats.ticks_ingested)
      .Int("points_ingested", stats.points_ingested)
      .Num("append_ms_mean", stats.append_latency.mean() * 1e3)
      .Num("append_ms_p50", tail.Percentile(50) * 1e3)
      .Num("append_ms_p99", tail.Percentile(99) * 1e3)
      .Num("append_ms_p999", tail.Percentile(99.9) * 1e3)
      .Num("append_ms_max", stats.append_latency.max() * 1e3)
      .Num("finalize_ms", finalize_seconds * 1e3)
      .Int("closed_eagerly", stats.closed_convoys)
      .Int("open_at_finalize", stats.open_convoys);
  RecordMiningRun(run.miner, *run.store, params,
                  ingest_seconds + finalize_seconds, result.value().size(),
                  stats.mining_io, extra);
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = "/tmp/k2hop_bench/stores/streaming_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintBanner("Streaming: online k/2-hop ingest vs batch");
  const Dataset& data = Trucks();
  std::cout << data.DebugString() << "\n\n";
  const MiningParams params{3, 200, 30.0};

  TablePrinter table({"store", "mode", "total_s", "tick_ms_mean", "tick_p50",
                      "tick_p99", "tick_p999", "tick_max", "finalize_s",
                      "closed", "open", "convoys"});
  for (StoreKind kind : {StoreKind::kMemory, StoreKind::kLsm}) {
    // Batch reference: bulk load + one-shot mine (keeping the convoy list
    // so the online result can be compared set-for-set, not just counted).
    auto batch_store = BuildStore(kind, data, "streaming_batch");
    K2HopStats batch_stats;
    Stopwatch batch_sw;
    auto batch_result = MineK2Hop(batch_store.get(), params, {}, &batch_stats);
    const double batch_seconds = batch_sw.ElapsedSeconds();
    K2_CHECK(batch_result.ok());
    const std::vector<Convoy>& batch_convoys = batch_result.value();
    RecordMiningRun("k2hop", *batch_store, params, batch_seconds,
                    batch_convoys.size(), batch_stats.io);
    table.AddRow({StoreKindName(kind), "batch", Fmt(batch_seconds),
                  Fmt(batch_seconds * 1e3 /
                      static_cast<double>(data.timestamps().size())),
                  "-", "-", "-", "-", "-", "-", "-",
                  std::to_string(batch_convoys.size())});

    // Streaming: empty store, tick-by-tick Append + incremental mining.
    if (kind == StoreKind::kLsm) {
      LsmStoreOptions deferred;
      deferred.wal_sync_every_append = false;
      RunStreaming({StoreKindName(kind), "k2hop-online",
                    std::make_unique<LsmStore>(FreshDir("lsmt") + "/lsm",
                                               deferred)},
                   data, params, batch_convoys, &table);
      LsmStoreOptions durable;  // store defaults: fdatasync per tick
      RunStreaming({StoreKindName(kind), "k2hop-online-durable",
                    std::make_unique<LsmStore>(FreshDir("lsmt_durable") +
                                                   "/lsm",
                                               durable)},
                   data, params, batch_convoys, &table);
      LsmStoreOptions foreground;  // pre-background-compaction configuration
      foreground.wal_sync_every_append = false;
      foreground.background_compaction = false;
      RunStreaming({StoreKindName(kind), "k2hop-online-fg",
                    std::make_unique<LsmStore>(FreshDir("lsmt_fg") + "/lsm",
                                               foreground)},
                   data, params, batch_convoys, &table);
    } else {
      auto store_result =
          CreateStore(kind, FreshDir(StoreKindName(kind)));
      K2_CHECK(store_result.ok());
      RunStreaming({StoreKindName(kind), "k2hop-online",
                    store_result.MoveValue()},
                   data, params, batch_convoys, &table);
    }
  }
  table.Print();
  std::cout << "\nonline == batch convoy sets (checked in-process); "
               "tick_ms_* amortize ingest + incremental mining per tick. "
               "lsmt/k2hop-online defers WAL sync (engine-default "
               "durability); -durable pays one fdatasync per tick.\n";
  return 0;
}
