// Fig. 7b — performance gain of k2-RDBMS and k2-LSMT over VCoDA* on the
// T-Drive workload, as bands over an (m, eps) grid per k. Paper: up to ~260x
// on T-Drive — an order of magnitude above the Trucks gains, because the
// dataset is larger and convoys are sparser.
#include "bench/harness.h"

using namespace k2;
using namespace k2::bench;

int main() {
  PrintBanner("Fig 7b: gain over VCoDA* (T-Drive)");
  const Dataset& data = TDrive();
  std::cout << data.DebugString() << "\n\n";

  auto file_store = BuildStore(StoreKind::kFile, data, "fig7b");
  auto rdbms = BuildStore(StoreKind::kBPlusTree, data, "fig7b");
  auto lsmt = BuildStore(StoreKind::kLsm, data, "fig7b");

  const std::vector<int> ms = {3, 6};
  const std::vector<double> epss = {60.0, 200.0};

  TablePrinter table({"k", "engine", "min", "median", "mean", "max"});
  for (int k : {200, 400, 600, 1000}) {
    std::vector<double> rdbms_gain, lsmt_gain;
    for (int m : ms) {
      for (double eps : epss) {
        const MiningParams params{m, k, eps};
        const double vcoda = RunVcoda(file_store.get(), params, true).seconds;
        rdbms_gain.push_back(vcoda /
                             std::max(1e-6, RunK2(rdbms.get(), params).seconds));
        lsmt_gain.push_back(vcoda /
                            std::max(1e-6, RunK2(lsmt.get(), params).seconds));
      }
    }
    const GainBand rb = Band(rdbms_gain);
    const GainBand lb = Band(lsmt_gain);
    table.AddRow({std::to_string(k), "k2-RDBMS", Fmt(rb.min, 1), Fmt(rb.median, 1),
                  Fmt(rb.mean, 1), Fmt(rb.max, 1)});
    table.AddRow({std::to_string(k), "k2-LSMT", Fmt(lb.min, 1), Fmt(lb.median, 1),
                  Fmt(lb.mean, 1), Fmt(lb.max, 1)});
  }
  table.Print();
  return 0;
}
