#include "common/convoy.h"

#include <algorithm>
#include <sstream>

namespace k2 {

std::string Convoy::DebugString() const {
  std::ostringstream os;
  os << '(' << objects.DebugString() << ", [" << start << ", " << end << "])";
  return os.str();
}

bool MaximalConvoySet::Insert(Convoy v) {
  for (const Convoy& w : convoys_) {
    if (v.IsSubConvoyOf(w)) return false;  // dominated (or duplicate)
  }
  // Evict members dominated by v.
  convoys_.erase(std::remove_if(convoys_.begin(), convoys_.end(),
                                [&](const Convoy& w) {
                                  return w.IsStrictSubConvoyOf(v);
                                }),
                 convoys_.end());
  convoys_.push_back(std::move(v));
  return true;
}

std::vector<Convoy> MaximalConvoySet::TakeSorted() {
  SortConvoys(&convoys_);
  return std::move(convoys_);
}

void SortConvoys(std::vector<Convoy>* convoys) {
  std::sort(convoys->begin(), convoys->end());
}

std::vector<Convoy> FilterMaximal(std::vector<Convoy> convoys) {
  MaximalConvoySet set;
  for (Convoy& v : convoys) set.Insert(std::move(v));
  return set.TakeSorted();
}

std::vector<Convoy> FilterMinLength(std::vector<Convoy> convoys, int k) {
  convoys.erase(std::remove_if(convoys.begin(), convoys.end(),
                               [k](const Convoy& v) { return v.length() < k; }),
                convoys.end());
  return convoys;
}

std::string ConvoysDebugString(const std::vector<Convoy>& convoys) {
  std::ostringstream os;
  os << convoys.size() << " convoy(s)\n";
  for (const Convoy& v : convoys) {
    os << "  " << v.DebugString() << '\n';
  }
  return os.str();
}

}  // namespace k2
