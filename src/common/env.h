// Injectable file-system shim for the storage write path (LevelDB-style
// `Env`). Everything the LSM store persists — WAL frames, SSTable files,
// the MANIFEST — goes through an Env, so tests can substitute
// FaultInjectionEnv and fail, tear, or "crash" the process state at the Nth
// durability operation, then reopen against the real file system and check
// that recovery reconstructs exactly the durable prefix.
#ifndef K2_COMMON_ENV_H_
#define K2_COMMON_ENV_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace k2 {

/// Append-only writable file. Append buffers in the OS (or the wrapper);
/// bytes are durable only after Sync() returns OK. Close() flushes
/// user-space buffers but does NOT imply Sync — a crash after Close can
/// still lose everything written since the last Sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  virtual Status Append(const void* data, size_t n) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

  const std::string& path() const { return path_; }

 protected:
  explicit WritableFile(std::string path) : path_(std::move(path)) {}
  std::string path_;
};

/// File-system operations the LSM write path depends on. Default() is the
/// process-wide POSIX implementation; tests inject FaultInjectionEnv.
/// Implementations must be safe to call from multiple threads (the store's
/// background compaction thread and the foreground writer share one Env).
class Env {
 public:
  virtual ~Env() = default;

  /// The real file system. Never deleted; safe to share across stores.
  static Env* Default();

  /// Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Atomically renames `from` to `to` and fsyncs the parent directory, so
  /// the rename itself is durable — the commit point of atomic publication.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Removes `path`; a missing file is OK (idempotent cleanup).
  virtual Status RemoveFile(const std::string& path) = 0;

  virtual Status CreateDirs(const std::string& dir) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  /// File and directory names (not full paths) directly under `dir`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
};

/// Wraps a base Env and injects failures at the Nth durability operation.
/// Durability ops are counted across all files and threads in call order:
/// file creation, each Append, each Sync, each Close, each rename, each
/// remove. Reads and directory ops are passed through uncounted.
///
/// Crash semantics model a power cut: every tracked file is truncated back
/// to its last synced size (unsynced page-cache contents are lost), and all
/// subsequent operations — reads included — fail, as they would in a dead
/// process. Recovery tests reopen the directory with a fresh Env.
class FaultInjectionEnv final : public Env {
 public:
  enum class FaultMode {
    kNone,      ///< No fault armed; ops are counted only.
    kFailOp,    ///< Nth op returns IOError; files keep their bytes.
    kCrash,     ///< Nth op powers off: unsynced bytes vanish, env goes dead.
    kTornWrite  ///< Like kCrash, but if the Nth op is an Append, a prefix of
                ///< that file's unsynced bytes survives (a torn write).
  };

  explicit FaultInjectionEnv(Env* base = nullptr);

  /// Arms `mode` to fire at op number `fail_at_op` (0-based, counted from
  /// now on). Resets the trigger and the crashed state, not the op counter.
  void ArmFault(FaultMode mode, uint64_t fail_at_op) K2_EXCLUDES(mu_);

  /// Total durability ops observed so far.
  uint64_t op_count() const K2_EXCLUDES(mu_);
  /// True once the armed fault has fired.
  bool triggered() const K2_EXCLUDES(mu_);
  /// True once the simulated process state is dead (kCrash / kTornWrite
  /// fired, or CrashNow was called).
  bool crashed() const K2_EXCLUDES(mu_);

  /// Simulates a power cut right now: truncates every tracked file to its
  /// last synced size and fails all subsequent operations.
  void CrashNow() K2_EXCLUDES(mu_);

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

 private:
  friend class FaultInjectionFile;

  struct FileState {
    uint64_t size = 0;         ///< Bytes written through the env.
    uint64_t synced_size = 0;  ///< Bytes guaranteed to survive a crash.
  };

  /// Charges one durability op under `mu_`. Returns non-OK when the env is
  /// dead or this op is the armed failpoint (firing side effects included).
  /// `appending_path` is the file being appended when the op is an Append,
  /// so kTornWrite knows which file keeps a torn prefix.
  Status BeforeOpLocked(const std::string& appending_path = std::string())
      K2_REQUIRES(mu_);
  void CrashLocked(const std::string& torn_path) K2_REQUIRES(mu_);

  Env* const base_;
  mutable Mutex mu_;
  std::map<std::string, FileState> files_ K2_GUARDED_BY(mu_);
  FaultMode mode_ K2_GUARDED_BY(mu_) = FaultMode::kNone;
  uint64_t fail_at_op_ K2_GUARDED_BY(mu_) = 0;
  uint64_t op_count_ K2_GUARDED_BY(mu_) = 0;
  bool armed_ K2_GUARDED_BY(mu_) = false;
  bool triggered_ K2_GUARDED_BY(mu_) = false;
  bool crashed_ K2_GUARDED_BY(mu_) = false;
};

}  // namespace k2

#endif  // K2_COMMON_ENV_H_
