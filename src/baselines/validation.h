// Fully-connected-convoy validation (paper Sec. 4.6 / Algorithm 4). A
// candidate (O, T) is FC iff the dataset restricted to O clusters to exactly
// {O} at every tick of T. The checker probes ticks in binary-subdivision
// order (the HWMT* fast path); when the check fails it falls back to an
// exact sweep over the restriction and recurses on the resulting pieces —
// the paper's correction of DCVal. `recursive = false` reproduces the
// original one-pass DCVal (Yoon & Shahabi), which can emit non-FC convoys
// because split results are not re-validated.
#ifndef K2_BASELINES_VALIDATION_H_
#define K2_BASELINES_VALIDATION_H_

#include <vector>

#include "common/convoy.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/store.h"

namespace k2 {

/// Tick probe order of HWMT*: range endpoints first, then recursive
/// midpoints in BFS (level) order; every tick of the range appears exactly
/// once. "The chance of objects being coincidentally together in adjacent
/// timestamps is higher than ... in distant timestamps" (Sec. 4.3).
std::vector<Timestamp> BinarySubdivisionOrder(TimeRange range);

struct ValidationStats {
  size_t candidates_in = 0;
  size_t fc_accepted = 0;     ///< candidates that passed unchanged
  size_t split_rounds = 0;    ///< fallback sweeps executed
  size_t reclusterings = 0;   ///< restricted DBSCAN runs
};

/// Reduces `candidates` to the maximal fully connected convoys they
/// contain. All data access goes through `store` point reads.
Result<std::vector<Convoy>> ValidateFullyConnected(
    Store* store, std::vector<Convoy> candidates, const MiningParams& params,
    bool recursive = true, ValidationStats* stats = nullptr);

}  // namespace k2

#endif  // K2_BASELINES_VALIDATION_H_
