// Fixed-capacity read-only buffer pool with LRU eviction. The B+-tree is
// immutable after bulk load, so there are no dirty pages; the pool exists to
// model the memory/disk traffic split (hits vs misses feed IoStats).
#ifndef K2_STORAGE_BPTREE_BUFFER_POOL_H_
#define K2_STORAGE_BPTREE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/bptree/pager.h"

namespace k2 {

class BufferPool {
 public:
  /// `capacity` = number of resident pages (>= 1).
  BufferPool(Pager* pager, size_t capacity, IoStats* stats = nullptr);

  /// Returns a pointer to the resident page content (valid until the next
  /// Fetch call that evicts it — callers must copy what they keep).
  Result<const std::byte*> Fetch(PageId pid);

  /// Drops all cached pages.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t resident() const { return frames_.size(); }

 private:
  struct Frame {
    PageId pid;
    std::unique_ptr<std::byte[]> data;
  };

  Pager* pager_;
  size_t capacity_;
  IoStats* stats_;
  // MRU at front. unordered_map points into the list.
  std::list<Frame> lru_;
  std::unordered_map<PageId, std::list<Frame>::iterator> frames_;
};

}  // namespace k2

#endif  // K2_STORAGE_BPTREE_BUFFER_POOL_H_
