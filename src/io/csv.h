// Dataset interchange: CSV (for importing real GPS traces with the paper's
// <oid, x, y, t> schema) and a fixed-width binary format (fast reload of
// generated workloads between bench runs).
#ifndef K2_IO_CSV_H_
#define K2_IO_CSV_H_

#include <string>

#include "common/status.h"
#include "model/dataset.h"

namespace k2 {

/// Writes "t,oid,x,y" rows with a header line.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a CSV produced by WriteCsv (or any file with a t,oid,x,y header in
/// any column order). Rows that fail to parse yield an error.
Result<Dataset> ReadCsv(const std::string& path);

/// Binary round-trip: a small header plus packed PointRecords.
Status WriteBinary(const Dataset& dataset, const std::string& path);
Result<Dataset> ReadBinary(const std::string& path);

}  // namespace k2

#endif  // K2_IO_CSV_H_
