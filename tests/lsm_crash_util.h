// Shared harness for the LSM crash-recovery matrix: fixtures, op counting,
// and the single-failpoint iteration (run workload under an armed
// FaultInjectionEnv until it dies -> reopen clean -> assert the recovered
// state is an intact prefix with zero durable ticks lost -> re-ingest the
// missing suffix -> assert mining output is byte-identical to the
// uninterrupted run). Used by lsm_crash_test.cc (smoke: strided sweep) and
// lsm_crash_differential_test.cc (slow: every failpoint, every mode, every
// fixture family).
#ifndef K2_TESTS_LSM_CRASH_UTIL_H_
#define K2_TESTS_LSM_CRASH_UTIL_H_

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "core/k2hop.h"
#include "model/dataset.h"
#include "storage/lsm_store.h"
#include "tests/test_util.h"

namespace k2::testing {

/// Scratch directory for crash sweeps. Prefers tmpfs (/dev/shm): the sweep
/// fdatasyncs per tick and per flush, and the simulated crash is a
/// truncate-to-synced-size — real disk durability adds nothing but latency.
inline std::string CrashScratchDir(const std::string& tag) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory("/dev/shm", ec)) {
    const fs::path dir = fs::path("/dev/shm") / ("k2hop_crash_" + tag);
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    if (!ec) return dir.string();
  }
  return ScratchDir("crash_" + tag);
}

struct CrashFixture {
  std::string name;
  Dataset data;
  MiningParams params;
};

/// Store shape for the sweeps: tiny memtable and fanout so flushes and
/// compaction cascades happen every few ticks, synchronous jobs so the op
/// sequence is deterministic, per-tick WAL sync so "Append returned OK"
/// means durable.
inline LsmStoreOptions SweepStoreOptions(Env* env) {
  LsmStoreOptions options;
  options.memtable_limit = 256;
  options.tier_fanout = 2;
  options.env = env;
  options.wal_sync_every_append = true;
  options.background_compaction = false;
  return options;
}

/// Streams every tick of `fix` through a store in `dir`; returns the ticks
/// whose Append returned OK (the durable set), stopping at the first error.
inline std::vector<Timestamp> StreamTicks(LsmStore* store, const Dataset& data) {
  std::vector<Timestamp> durable;
  for (Timestamp t : data.timestamps()) {
    if (!store->Append(t, SnapshotPoints(data, t)).ok()) break;
    durable.push_back(t);
  }
  return durable;
}

/// Durability ops of one uninterrupted workload run (including the
/// destructor's WAL close) — the sweep's failpoint range.
inline uint64_t CountCleanOps(const CrashFixture& fix, const std::string& tag,
                              bool background) {
  FaultInjectionEnv env;  // unarmed: counts only
  LsmStoreOptions options = SweepStoreOptions(&env);
  options.background_compaction = background;
  {
    LsmStore store(CrashScratchDir(tag + "_count"), options);
    EXPECT_TRUE(store.init_status().ok()) << store.init_status().ToString();
    StreamTicks(&store, fix.data);
  }
  return env.op_count();
}

/// One cell of the crash matrix. Kills the workload at durability op
/// `failpoint` with `mode`, reopens the directory with the real Env, and
/// checks the recovery contract:
///   1. recovery succeeds and yields a prefix of the tick stream;
///   2. every WAL-durable tick (Append returned OK) is in that prefix;
///   3. every recovered tick scans back byte-identical to the input;
///   4. after re-ingesting the lost suffix, MineK2Hop over the recovered
///      store equals `expected` exactly (the uninterrupted run's output).
inline void RunCrashIteration(const CrashFixture& fix,
                              FaultInjectionEnv::FaultMode mode,
                              uint64_t failpoint,
                              const std::vector<Convoy>& expected,
                              bool background, const std::string& tag) {
  SCOPED_TRACE("fixture=" + fix.name + " mode=" +
               std::to_string(static_cast<int>(mode)) +
               " failpoint=" + std::to_string(failpoint));
  const std::string dir = CrashScratchDir(tag);

  FaultInjectionEnv env;
  env.ArmFault(mode, failpoint);
  std::vector<Timestamp> durable;
  {
    LsmStoreOptions options = SweepStoreOptions(&env);
    options.background_compaction = background;
    LsmStore store(dir, options);
    if (store.init_status().ok()) {
      durable = StreamTicks(&store, fix.data);
    }
  }

  // Reopen against the real file system: whatever the injected failure left
  // behind, recovery must come up clean.
  LsmStoreOptions reopen = SweepStoreOptions(nullptr);
  reopen.wal_sync_every_append = false;  // re-ingest needs speed, not durability
  LsmStore recovered(dir, reopen);
  ASSERT_TRUE(recovered.init_status().ok())
      << recovered.init_status().ToString();

  const std::vector<Timestamp>& all_ticks = fix.data.timestamps();
  const std::vector<Timestamp> got = recovered.timestamps();
  // 1 + 2: an intact prefix, at least as long as the durable set (a tick
  // whose Append died mid-way may still have landed; one that returned OK
  // must have).
  ASSERT_GE(got.size(), durable.size()) << "durable ticks lost";
  ASSERT_LE(got.size(), all_ticks.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], all_ticks[i]) << "recovered tick stream is not a prefix";
  }

  // 3: per-tick content.
  std::vector<SnapshotPoint> points;
  for (Timestamp t : got) {
    ASSERT_TRUE(recovered.ScanTimestamp(t, &points).ok());
    ASSERT_EQ(points, SnapshotPoints(fix.data, t)) << "tick " << t;
  }

  // 4: finish the stream and mine.
  for (size_t i = got.size(); i < all_ticks.size(); ++i) {
    const Timestamp t = all_ticks[i];
    ASSERT_TRUE(recovered.Append(t, SnapshotPoints(fix.data, t)).ok())
        << "re-ingest failed at tick " << t;
  }
  auto mined = MineK2Hop(&recovered, fix.params);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_EQ(mined.value(), expected)
      << "mining output diverged after crash recovery";

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace k2::testing

#endif  // K2_TESTS_LSM_CRASH_UTIL_H_
