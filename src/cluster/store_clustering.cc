#include "cluster/store_clustering.h"

#include "cluster/dbscan.h"

namespace k2 {

Result<std::vector<ObjectSet>> ClusterSnapshot(Store* store, Timestamp t,
                                               const MiningParams& params) {
  std::vector<SnapshotPoint> points;
  K2_RETURN_NOT_OK(store->ScanTimestamp(t, &points));
  return Dbscan(points, params.eps, params.m);
}

Result<std::vector<ObjectSet>> ReCluster(Store* store, Timestamp t,
                                         const ObjectSet& objects,
                                         const MiningParams& params) {
  std::vector<SnapshotPoint> points;
  K2_RETURN_NOT_OK(store->GetPoints(t, objects, &points));
  return Dbscan(points, params.eps, params.m);
}

}  // namespace k2
