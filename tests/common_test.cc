// Unit tests for src/common: ObjectSet algebra, Convoy/maximality, Status /
// Result plumbing, RNG determinism, timers.
#include <gtest/gtest.h>

#include "common/convoy.h"
#include "common/object_set.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "tests/test_util.h"

namespace k2 {
namespace {

using ::k2::testing::C;

// ---------------------------------------------------------------------------
// ObjectSet
// ---------------------------------------------------------------------------

TEST(ObjectSetTest, ConstructorSortsAndDedupes) {
  const ObjectSet s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ids(), (std::vector<ObjectId>{1, 3, 5}));
}

TEST(ObjectSetTest, OfLiteral) {
  EXPECT_EQ(ObjectSet::Of({3, 1, 2}), ObjectSet({1, 2, 3}));
}

TEST(ObjectSetTest, EmptySet) {
  const ObjectSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.Contains(0));
  EXPECT_TRUE(s.IsSubsetOf(ObjectSet::Of({1, 2})));
}

TEST(ObjectSetTest, Contains) {
  const ObjectSet s({2, 4, 6});
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(6));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(s.Contains(7));
}

TEST(ObjectSetTest, SubsetRelation) {
  const ObjectSet a({1, 2});
  const ObjectSet b({1, 2, 3});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_FALSE(ObjectSet::Of({1, 4}).IsSubsetOf(b));
}

TEST(ObjectSetTest, Intersect) {
  const ObjectSet a({1, 2, 3, 4});
  const ObjectSet b({2, 4, 6});
  EXPECT_EQ(ObjectSet::Intersect(a, b), ObjectSet::Of({2, 4}));
  EXPECT_EQ(ObjectSet::Intersect(a, ObjectSet()), ObjectSet());
}

TEST(ObjectSetTest, IntersectionSizeMatchesIntersect) {
  const ObjectSet a({1, 3, 5, 7, 9});
  const ObjectSet b({3, 4, 5, 9, 10});
  EXPECT_EQ(ObjectSet::IntersectionSize(a, b),
            ObjectSet::Intersect(a, b).size());
}

TEST(ObjectSetTest, UnionAndDifference) {
  const ObjectSet a({1, 2, 3});
  const ObjectSet b({3, 4});
  EXPECT_EQ(ObjectSet::Union(a, b), ObjectSet::Of({1, 2, 3, 4}));
  EXPECT_EQ(ObjectSet::Difference(a, b), ObjectSet::Of({1, 2}));
  EXPECT_EQ(ObjectSet::Difference(b, a), ObjectSet::Of({4}));
}

TEST(ObjectSetTest, OrderingIsLexicographic) {
  EXPECT_LT(ObjectSet::Of({1, 2}), ObjectSet::Of({1, 3}));
  EXPECT_LT(ObjectSet::Of({1}), ObjectSet::Of({1, 2}));
  EXPECT_FALSE(ObjectSet::Of({2}) < ObjectSet::Of({1, 5}));
}

TEST(ObjectSetTest, HashDiffersForDifferentSets) {
  EXPECT_NE(ObjectSet::Of({1, 2}).Hash(), ObjectSet::Of({1, 3}).Hash());
  EXPECT_EQ(ObjectSet::Of({1, 2}).Hash(), ObjectSet::Of({2, 1}).Hash());
}

TEST(ObjectSetTest, DebugString) {
  EXPECT_EQ(ObjectSet::Of({3, 1}).DebugString(), "{1, 3}");
  EXPECT_EQ(ObjectSet().DebugString(), "{}");
}

// ---------------------------------------------------------------------------
// Convoy & maximality
// ---------------------------------------------------------------------------

TEST(ConvoyTest, Length) {
  EXPECT_EQ(C({1, 2}, 3, 7).length(), 5);
  EXPECT_EQ(C({1, 2}, 3, 3).length(), 1);
  EXPECT_EQ(Convoy().length(), 0);
}

TEST(ConvoyTest, SubConvoyRelation) {
  const Convoy big = C({1, 2, 3}, 0, 10);
  EXPECT_TRUE(C({1, 2}, 2, 5).IsSubConvoyOf(big));
  EXPECT_TRUE(big.IsSubConvoyOf(big));
  EXPECT_FALSE(big.IsStrictSubConvoyOf(big));
  EXPECT_TRUE(C({1, 2}, 2, 5).IsStrictSubConvoyOf(big));
  // Time-subset but object-superset: not a sub-convoy.
  EXPECT_FALSE(C({1, 2, 3, 4}, 2, 5).IsSubConvoyOf(big));
  // Object-subset but longer lifespan: not a sub-convoy.
  EXPECT_FALSE(C({1, 2}, 0, 11).IsSubConvoyOf(big));
}

TEST(MaximalConvoySetTest, DominatedInsertIsRejected) {
  MaximalConvoySet set;
  EXPECT_TRUE(set.Insert(C({1, 2, 3}, 0, 10)));
  EXPECT_FALSE(set.Insert(C({1, 2}, 2, 5)));
  EXPECT_FALSE(set.Insert(C({1, 2, 3}, 0, 10)));  // duplicate
  EXPECT_EQ(set.size(), 1u);
}

TEST(MaximalConvoySetTest, DominatingInsertEvictsMembers) {
  MaximalConvoySet set;
  EXPECT_TRUE(set.Insert(C({1, 2}, 2, 5)));
  EXPECT_TRUE(set.Insert(C({2, 3}, 1, 4)));
  EXPECT_TRUE(set.Insert(C({1, 2, 3}, 0, 10)));  // dominates both
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.convoys()[0], C({1, 2, 3}, 0, 10));
}

TEST(MaximalConvoySetTest, IncomparableConvoysCoexist) {
  MaximalConvoySet set;
  EXPECT_TRUE(set.Insert(C({1, 2}, 0, 10)));
  EXPECT_TRUE(set.Insert(C({1, 2, 3}, 0, 5)));  // shorter but bigger
  EXPECT_EQ(set.size(), 2u);
}

TEST(FilterMaximalTest, RemovesSubConvoysAndSorts) {
  std::vector<Convoy> in{C({1, 2}, 5, 9), C({1, 2, 3}, 5, 9), C({4, 5}, 0, 3),
                         C({1, 2}, 5, 9)};
  const std::vector<Convoy> out = FilterMaximal(in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], C({4, 5}, 0, 3));
  EXPECT_EQ(out[1], C({1, 2, 3}, 5, 9));
}

TEST(FilterMinLengthTest, DropsShortConvoys) {
  std::vector<Convoy> in{C({1, 2}, 0, 3), C({1, 2}, 0, 2)};
  const std::vector<Convoy> out = FilterMinLength(in, 4);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].length(), 4);
}

// ---------------------------------------------------------------------------
// TimeRange & MiningParams
// ---------------------------------------------------------------------------

TEST(TimeRangeTest, LengthAndContains) {
  const TimeRange r{2, 5};
  EXPECT_EQ(r.length(), 4);
  EXPECT_TRUE(r.Contains(2));
  EXPECT_TRUE(r.Contains(5));
  EXPECT_FALSE(r.Contains(6));
  EXPECT_TRUE((TimeRange{3, 2}).empty());
  EXPECT_EQ((TimeRange{3, 2}).length(), 0);
}

TEST(MiningParamsTest, Validity) {
  EXPECT_TRUE((MiningParams{2, 2, 0.1}).Valid());
  EXPECT_FALSE((MiningParams{1, 2, 0.1}).Valid());
  EXPECT_FALSE((MiningParams{2, 1, 0.1}).Valid());
  EXPECT_FALSE((MiningParams{2, 2, 0.0}).Valid());
}

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  const Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

Status FailingOperation() { return Status::NotFound("nope"); }

Status Caller() {
  K2_RETURN_NOT_OK(FailingOperation());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Caller().code(), StatusCode::kNotFound);
}

Result<int> ProduceValue(bool fail) {
  if (fail) return Status::Invalid("bad");
  return 41;
}

Result<int> ConsumeValue(bool fail) {
  K2_ASSIGN_OR_RETURN(int v, ProduceValue(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturn) {
  auto ok = ConsumeValue(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto err = ConsumeValue(true);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalid);
}

// ---------------------------------------------------------------------------
// Rng / timers
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformRanges) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.Uniform(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(PhaseTimerTest, AccumulatesNamedPhases) {
  PhaseTimer timer;
  timer.Add("a", 1.0);
  timer.Add("b", 2.0);
  timer.Add("a", 0.5);
  EXPECT_DOUBLE_EQ(timer.Get("a"), 1.5);
  EXPECT_DOUBLE_EQ(timer.Get("b"), 2.0);
  EXPECT_DOUBLE_EQ(timer.Get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(timer.Total(), 3.5);
  ASSERT_EQ(timer.phases().size(), 2u);
  EXPECT_EQ(timer.phases()[0].first, "a");  // insertion order kept
}

TEST(PhaseTimerTest, TimeRunsCallableAndReturnsValue) {
  PhaseTimer timer;
  const int v = timer.Time("phase", [] { return 7; });
  EXPECT_EQ(v, 7);
  EXPECT_GE(timer.Get("phase"), 0.0);
}

}  // namespace
}  // namespace k2
