// T-Drive-like workload (paper Sec. 6.2.2): a large taxi fleet in a grid
// city. Trips are biased toward a few arterial hubs, so taxis share arterial
// segments — sparse, short-lived co-movement, like real taxi traces. The
// default is scaled to ~1/16 of the real dataset for CI speed; pass
// `scale = 1.0` for full 10K-taxi scale.
#ifndef K2_GEN_TDRIVE_H_
#define K2_GEN_TDRIVE_H_

#include <cstdint>

#include "gen/road_network.h"
#include "model/dataset.h"

namespace k2 {

struct TDriveParams {
  /// Fraction of the real dataset's fleet (10,357 taxis, 1 week).
  double scale = 1.0 / 16.0;
  int ticks = 3400;        ///< one week at the ~177 s interpolated interval
  int num_hubs = 6;        ///< high-demand destinations (stations, malls)
  double hub_bias = 0.55;  ///< probability a trip ends at a hub
  double gps_noise = 4.0;  ///< metres
  /// Shared taxi lots: a fraction of the fleet takes one long rest parked at
  /// a communal lot — the source of the long-lived convoys real taxi traces
  /// exhibit (paper finds convoys on T-Drive even at large k).
  int num_lots = 12;
  double rest_fraction = 0.08;
  int rest_min_ticks = 300;
  int rest_max_ticks = 700;
  RoadNetwork::GridSpec grid = {.nx = 24,
                                .ny = 24,
                                .spacing = 600.0,
                                .jitter = 70.0,
                                .highway_every = 6};
  uint64_t seed = 11;
};

Dataset GenerateTDrive(const TDriveParams& params);

}  // namespace k2

#endif  // K2_GEN_TDRIVE_H_
