#!/usr/bin/env bash
# CI sequence: configure + build everything + smoke-tier ctest.
# Usage: scripts/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L smoke --output-on-failure -j "$JOBS"
