#include "storage/lsm_store.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "storage/key.h"

namespace k2 {

using lsm::LsmValue;
using lsm::ManifestState;
using lsm::ManifestTable;
using lsm::SSTable;
using lsm::SSTableBuilder;
using lsm::WalWriter;

namespace {

/// WAL record payload: [u8 type][u32 count][count * (u64 key, f64 x, f64 y)].
constexpr uint8_t kWalPutBatch = 1;
constexpr size_t kWalEntrySize = 24;
constexpr size_t kWalBatchHeader = 5;

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

// Read path shared by the store and its snapshots, templated over the
// memtable representation: the live store reads its active SkipList plus any
// immutable memtables awaiting flush, a snapshot reads one frozen sorted
// run. `mems` is newest first, `tables` is newest first; a row's rank is its
// source position (memtables before all tables), so newest-wins dedup is a
// sort by (key, rank). Per-table IO is charged to whatever IoStats each
// SSTable handle was opened with.

template <typename MemtableT>
Status LsmScanTimestamp(const MemtableT* const* mems, size_t num_mems,
                        const std::vector<SSTable*>& tables, Timestamp t,
                        std::vector<SnapshotPoint>* out, IoStats* stats) {
  out->clear();
  ++stats->snapshot_scans;
  const uint64_t lo = MinKeyOf(t);
  const uint64_t hi = MaxKeyOf(t);

  // Collect versions from every overlapping source, newest-wins per key.
  struct Row {
    uint64_t key;
    uint64_t rank;  // smaller = newer source
    LsmValue value;
  };
  std::vector<Row> rows;
  for (size_t i = 0; i < num_mems; ++i) {
    mems[i]->Scan(lo, hi, [&](uint64_t key, const LsmValue& value) {
      rows.push_back(Row{key, i, value});
    });
  }
  for (size_t j = 0; j < tables.size(); ++j) {
    if (!tables[j]->Overlaps(lo, hi)) continue;
    K2_RETURN_NOT_OK(
        tables[j]->Scan(lo, hi, [&](uint64_t key, const LsmValue& value) {
          rows.push_back(Row{key, num_mems + j, value});
        }));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.rank < b.rank;
  });
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0 && rows[i].key == rows[i - 1].key) continue;
    out->push_back(
        SnapshotPoint{KeyOid(rows[i].key), rows[i].value.x, rows[i].value.y});
  }
  stats->scanned_points += out->size();
  return Status::OK();
}

template <typename MemtableT>
Status LsmGetPoints(const MemtableT* const* mems, size_t num_mems,
                    const std::vector<SSTable*>& tables, bool use_bloom,
                    Timestamp t, const ObjectSet& objects,
                    std::vector<SnapshotPoint>* out, IoStats* stats) {
  out->clear();
  stats->point_queries += objects.size();
  for (ObjectId oid : objects) {
    const uint64_t key = MakeKey(t, oid);
    LsmValue value;
    bool found = false;
    for (size_t i = 0; i < num_mems; ++i) {
      if (!mems[i]->empty() && mems[i]->Get(key, &value)) {
        found = true;
        break;
      }
    }
    if (!found) {
      for (SSTable* table : tables) {
        K2_ASSIGN_OR_RETURN(found, table->Get(key, &value, use_bloom));
        if (found) break;
      }
    }
    if (found) out->push_back(SnapshotPoint{oid, value.x, value.y});
  }
  stats->point_hits += out->size();
  return Status::OK();
}

/// Frozen memtable: the SkipList contents as one sorted run, exposing the
/// subset of the SkipList read API the shared helpers use.
class SortedRun {
 public:
  void Add(uint64_t key, const LsmValue& value) {
    rows_.emplace_back(key, value);
  }

  bool empty() const { return rows_.empty(); }

  bool Get(uint64_t key, LsmValue* value) const {
    auto it = std::lower_bound(
        rows_.begin(), rows_.end(), key,
        [](const auto& row, uint64_t k) { return row.first < k; });
    if (it == rows_.end() || it->first != key) return false;
    *value = it->second;
    return true;
  }

  template <typename Fn>
  void Scan(uint64_t lo, uint64_t hi, Fn&& fn) const {
    auto it = std::lower_bound(
        rows_.begin(), rows_.end(), lo,
        [](const auto& row, uint64_t k) { return row.first < k; });
    for (; it != rows_.end() && it->first <= hi; ++it) fn(it->first, it->second);
  }

 private:
  std::vector<std::pair<uint64_t, LsmValue>> rows_;
};

/// Read-only view over the immutable table files: private SSTable handles
/// (own mmap, cache, bloom, stats) plus the frozen memtable run.
class LsmReadSnapshot final : public Store {
 public:
  LsmReadSnapshot(SortedRun memtable, bool use_bloom,
                  std::vector<Timestamp> timestamps, uint64_t num_points)
      : memtable_(std::move(memtable)),
        use_bloom_(use_bloom),
        timestamps_(std::move(timestamps)),
        num_points_(num_points) {}

  Status AddTable(const std::string& path, uint64_t seq, uint32_t tier) {
    K2_ASSIGN_OR_RETURN(std::unique_ptr<SSTable> table,
                        SSTable::Open(path, seq, &io_stats_));
    table->set_tier(tier);
    tables_.push_back(std::move(table));
    flat_.push_back(tables_.back().get());
    return Status::OK();
  }

  std::string name() const override { return "lsmt"; }
  Status BulkLoad(const Dataset&) override {
    return Status::Invalid("read snapshot of lsmt is read-only");
  }
  Status Append(Timestamp, const std::vector<SnapshotPoint>&) override {
    return Status::Invalid("read snapshot of lsmt is read-only");
  }
  Status ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) override {
    const SortedRun* mem = &memtable_;
    return LsmScanTimestamp(&mem, 1, flat_, t, out, &io_stats_);
  }
  Status GetPoints(Timestamp t, const ObjectSet& objects,
                   std::vector<SnapshotPoint>* out) override {
    const SortedRun* mem = &memtable_;
    return LsmGetPoints(&mem, 1, flat_, use_bloom_, t, objects, out,
                        &io_stats_);
  }
  TimeRange time_range() const override {
    if (timestamps_.empty()) return TimeRange{0, -1};
    return TimeRange{timestamps_.front(), timestamps_.back()};
  }
  const std::vector<Timestamp>& timestamps() const override {
    return timestamps_;
  }
  uint64_t num_points() const override { return num_points_; }

 private:
  std::vector<std::unique_ptr<SSTable>> tables_;
  std::vector<SSTable*> flat_;  // newest first, mirrors the parent's order
  SortedRun memtable_;
  bool use_bloom_;
  std::vector<Timestamp> timestamps_;
  uint64_t num_points_;
};

std::string TableFileName(uint64_t seq) {
  return "sstable_" + std::to_string(seq) + ".sst";
}

std::string WalFileName(uint64_t seq) {
  return "wal_" + std::to_string(seq) + ".log";
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / recovery
// ---------------------------------------------------------------------------

LsmStore::LsmStore(std::string dir, Options options)
    : dir_(std::move(dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {
  init_status_ = Recover();
  if (init_status_.ok() && options_.background_compaction) StartWorker();
}

LsmStore::~LsmStore() {
  bool started;
  {
    MutexLock lock(mu_);
    started = worker_started_;
  }
  if (started) StopWorker();
  // Best-effort close; the WAL's synced prefix is what survives regardless.
  // The worker is joined, but the lock keeps the analyzer's guard on wal_
  // honest (and costs nothing uncontended).
  MutexLock lock(mu_);
  if (wal_ != nullptr) wal_->Close();
}

std::string LsmStore::TableFilePath(uint64_t seq) const {
  return dir_ + "/" + TableFileName(seq);
}

std::string LsmStore::WalFilePath(uint64_t seq) const {
  return dir_ + "/" + WalFileName(seq);
}

Status LsmStore::Recover() {
  // Recovery runs single-threaded in the constructor, before the worker
  // exists; the lock makes the Locked helpers callable and is uncontended.
  MutexLock lock(mu_);
  K2_RETURN_NOT_OK(env_->CreateDirs(dir_));
  memtable_ = std::make_unique<lsm::SkipList>();

  ManifestState manifest;
  auto read = lsm::ReadManifest(env_, dir_);
  if (read.ok()) {
    manifest = read.MoveValue();
  } else if (read.status().code() != StatusCode::kNotFound) {
    return read.status();  // a corrupt MANIFEST is not silently ignorable
  }
  next_seq_ = std::max<uint64_t>(manifest.next_seq, 1);

  // 1. Open every table the MANIFEST says is live; they were published
  //    atomically, so a validation failure here is real corruption.
  for (const ManifestTable& t : manifest.tables) {
    if (t.tier >= tiers_.size()) tiers_.resize(t.tier + 1);
    K2_ASSIGN_OR_RETURN(
        std::unique_ptr<SSTable> table,
        SSTable::Open(dir_ + "/" + t.file, t.seq, &io_stats_));
    table->set_tier(t.tier);
    next_seq_ = std::max(next_seq_, t.seq + 1);
    tiers_[t.tier].push_back(std::move(table));
  }
  RebuildFlatViewLocked();

  // 2. Replay the live WAL segments (oldest first) into the active
  //    memtable: the longest valid prefix of each is exactly what was
  //    durable. The segments stay live until this memtable flushes.
  std::set<Timestamp> ticks;
  for (uint64_t wseq : manifest.live_wals) {
    next_seq_ = std::max(next_seq_, wseq + 1);
    const std::string path = WalFilePath(wseq);
    if (!env_->FileExists(path)) continue;  // flushed + deleted mid-commit
    auto replayed = lsm::ReplayWal(env_, path, [&](const char* payload,
                                                   size_t n) {
      if (n < kWalBatchHeader || payload[0] != kWalPutBatch) return;
      uint32_t count;
      std::memcpy(&count, payload + 1, 4);
      if (n < kWalBatchHeader + uint64_t{count} * kWalEntrySize) return;
      const char* p = payload + kWalBatchHeader;
      for (uint32_t i = 0; i < count; ++i, p += kWalEntrySize) {
        uint64_t key;
        LsmValue value;
        std::memcpy(&key, p, 8);
        std::memcpy(&value.x, p + 8, 8);
        std::memcpy(&value.y, p + 16, 8);
        memtable_->Put(key, value);
        ticks.insert(KeyTime(key));
        ++num_points_;
      }
    });
    if (!replayed.ok()) return replayed.status();
  }
  active_wal_seqs_ = manifest.live_wals;

  // 3. Start a fresh WAL segment for new writes and commit the recovered
  //    shape, so the store is durable-consistent before the first Append.
  K2_RETURN_NOT_OK(OpenActiveWalLocked(false));
  K2_RETURN_NOT_OK(WriteManifestLocked());

  // 4. Rebuild the derived metadata (tick list, row count) from the tables.
  for (SSTable* table : flat_newest_first_) {
    num_points_ += table->num_entries();
    K2_RETURN_NOT_OK(table->Scan(
        0, ~0ULL,
        [&](uint64_t key, const LsmValue&) { ticks.insert(KeyTime(key)); }));
  }
  tick_cache_.assign(ticks.begin(), ticks.end());

  // 5. Remove orphans: tmp files of interrupted builds and tables/WALs that
  //    fell out of the MANIFEST before their unlink landed. Names the
  //    MANIFEST (or the new WAL) references are kept; everything else with
  //    one of our prefixes goes. Best-effort.
  std::set<std::string> keep{std::string(lsm::kManifestName)};
  for (const ManifestTable& t : manifest.tables) keep.insert(t.file);
  for (uint64_t wseq : active_wal_seqs_) keep.insert(WalFileName(wseq));
  auto listing = env_->ListDir(dir_);
  if (listing.ok()) {
    for (const std::string& name : listing.value()) {
      if (keep.count(name) > 0) continue;
      if (StartsWith(name, "sstable_") || StartsWith(name, "wal_") ||
          EndsWith(name, ".tmp")) {
        env_->RemoveFile(dir_ + "/" + name);
      }
    }
  }

  io_stats_.Clear();  // recovery reads are not query IO
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status LsmStore::WritableLocked() const {
  K2_RETURN_NOT_OK(init_status_);
  return write_error_;
}

ManifestState LsmStore::ManifestSnapshotLocked() const {
  ManifestState state;
  state.next_seq = next_seq_;
  for (const PendingMemtable& p : pending_) {
    for (uint64_t seq : p.wal_seqs) state.live_wals.push_back(seq);
  }
  for (uint64_t seq : active_wal_seqs_) state.live_wals.push_back(seq);
  for (uint32_t tier = 0; tier < tiers_.size(); ++tier) {
    for (const auto& table : tiers_[tier]) {
      state.tables.push_back(ManifestTable{tier, table->seq(),
                                           TableFileName(table->seq()),
                                           table->num_entries()});
    }
  }
  return state;
}

Status LsmStore::WriteManifestLocked() {
  return lsm::WriteManifest(env_, dir_, ManifestSnapshotLocked());
}

Status LsmStore::OpenActiveWalLocked(bool fresh_wal_set) {
  if (fresh_wal_set) active_wal_seqs_.clear();
  const uint64_t seq = next_seq_++;
  auto writer = WalWriter::Create(env_, WalFilePath(seq));
  if (!writer.ok()) {
    write_error_ = writer.status();
    return writer.status();
  }
  wal_ = writer.MoveValue();
  active_wal_seqs_.push_back(seq);
  return Status::OK();
}

Status LsmStore::WalAppendLocked(Timestamp t,
                                 const std::vector<SnapshotPoint>& points,
                                 bool sync) {
  // A bulk load's rows are published by its final Flush; logging them first
  // would double every byte written (and the segments would be deleted
  // unread moments later).
  if (bulk_loading_) return Status::OK();
  wal_scratch_.clear();
  const uint32_t count = static_cast<uint32_t>(points.size());
  AppendRaw(&wal_scratch_, &kWalPutBatch, 1);
  AppendRaw(&wal_scratch_, &count, 4);
  for (const SnapshotPoint& p : points) {
    const uint64_t key = MakeKey(t, p.oid);
    AppendRaw(&wal_scratch_, &key, 8);
    AppendRaw(&wal_scratch_, &p.x, 8);
    AppendRaw(&wal_scratch_, &p.y, 8);
  }
  Status s = wal_->AddRecord(wal_scratch_.data(), wal_scratch_.size());
  if (s.ok() && sync) s = wal_->Sync();
  // Any WAL failure poisons the segment (it may now end in a torn frame
  // that replay would stop at), so writes stay failed until reopen.
  if (!s.ok()) write_error_ = s;
  return s;
}

void LsmStore::ApplyPutLocked(Timestamp t, ObjectId oid, double x, double y) {
  memtable_->Put(MakeKey(t, oid), LsmValue{x, y});
  // Keep the flat tick list sorted and unique as ticks arrive; time-ordered
  // ingest hits the cheap push_back path.
  if (tick_cache_.empty() || t > tick_cache_.back()) {
    tick_cache_.push_back(t);
  } else {
    auto it = std::lower_bound(tick_cache_.begin(), tick_cache_.end(), t);
    if (it == tick_cache_.end() || *it != t) tick_cache_.insert(it, t);
  }
  ++num_points_;
}

Status LsmStore::Put(Timestamp t, ObjectId oid, double x, double y) {
  MutexLock lock(mu_);
  K2_RETURN_NOT_OK(WritableLocked());
  const std::vector<SnapshotPoint> one{SnapshotPoint{oid, x, y}};
  K2_RETURN_NOT_OK(WalAppendLocked(t, one, /*sync=*/false));
  ApplyPutLocked(t, oid, x, y);
  return MaybeRotateLocked();
}

Status LsmStore::Append(Timestamp t, const std::vector<SnapshotPoint>& points) {
  K2_RETURN_NOT_OK(init_status_);
  K2_RETURN_NOT_OK(CheckAppend(t, points));
  if (points.empty()) return Status::OK();
  MutexLock lock(mu_);
  K2_RETURN_NOT_OK(WritableLocked());
  // WAL first (synced by default): the tick is durable before the memtable
  // sees it, and an error leaves the store exactly as it was.
  K2_RETURN_NOT_OK(
      WalAppendLocked(t, points, options_.wal_sync_every_append));
  for (const SnapshotPoint& p : points) ApplyPutLocked(t, p.oid, p.x, p.y);
  return MaybeRotateLocked();
}

Status LsmStore::MaybeRotateLocked() {
  if (memtable_->size() >= options_.memtable_limit) {
    return RotateMemtableLocked();
  }
  if (options_.wal.segment_bytes > 0 && wal_ != nullptr &&
      wal_->bytes_written() >= options_.wal.segment_bytes) {
    return RotateWalSegmentLocked();
  }
  return Status::OK();
}

Status LsmStore::RotateWalSegmentLocked() {
  // Seal the active segment and chain a fresh one onto the same memtable.
  // The sealed file stays in active_wal_seqs_ — its records live only in
  // the memtable — and the whole chain is deleted when that memtable's
  // flush commits, exactly like the single-segment case.
  Status s = wal_->Close();
  if (!s.ok()) {
    write_error_ = s;
    return s;
  }
  K2_RETURN_NOT_OK(OpenActiveWalLocked(/*fresh_wal_set=*/false));
  // Commit the new segment to the MANIFEST before any record can land in
  // it: a crash between open and commit leaves only an empty orphan file,
  // which recovery deletes.
  s = WriteManifestLocked();
  if (!s.ok()) write_error_ = s;
  return s;
}

Status LsmStore::RotateMemtableLocked() {
  if (memtable_->empty()) return Status::OK();
  // Seal the segment feeding this memtable (flush the writer's buffer; the
  // synced prefix is already safe, and the table the flush job publishes
  // supersedes the rest).
  Status s = wal_->Close();
  if (!s.ok()) {
    write_error_ = s;
    return s;
  }
  pending_.push_back(PendingMemtable{
      std::shared_ptr<const lsm::SkipList>(memtable_.release()),
      active_wal_seqs_});
  memtable_ = std::make_unique<lsm::SkipList>();
  K2_RETURN_NOT_OK(OpenActiveWalLocked(/*fresh_wal_set=*/true));
  s = WriteManifestLocked();
  if (!s.ok()) {
    write_error_ = s;
    return s;
  }
  if (options_.background_compaction && worker_started_) {
    work_cv_.NotifyOne();
    // Backpressure: let the worker catch up before queueing more.
    while (pending_.size() > options_.max_pending_memtables &&
           write_error_.ok() && !stop_) {
      drain_cv_.Wait(mu_);
    }
    return write_error_;
  }
  return DrainLocked();
}

Status LsmStore::DrainLocked() {
  if (options_.background_compaction && worker_started_) {
    while (!(pending_.empty() && !worker_busy_) && write_error_.ok()) {
      drain_cv_.Wait(mu_);
    }
    return write_error_;
  }
  while (write_error_.ok() && !pending_.empty()) {
    Status s = FlushFrontLocked();
    if (s.ok()) s = CompactLocked();
    if (!s.ok()) write_error_ = s;
  }
  return write_error_;
}

Status LsmStore::Flush() {
  MutexLock lock(mu_);
  K2_RETURN_NOT_OK(WritableLocked());
  K2_RETURN_NOT_OK(RotateMemtableLocked());
  return DrainLocked();
}

Status LsmStore::FlushFrontLocked() {
  if (pending_.empty()) return Status::OK();
  // The job stays in pending_ (readers keep seeing it) until the table is
  // installed; only this thread consumes the queue, so the front is stable
  // across the unlocked section.
  PendingMemtable job = pending_.front();
  const uint64_t table_seq = next_seq_++;
  const std::string path = TableFilePath(table_seq);

  mu_.Unlock();
  SSTableBuilder builder(env_, path);
  builder.Reserve(job.mem->size());
  Status s;
  job.mem->ForEach([&](uint64_t key, const LsmValue& value) {
    if (s.ok()) s = builder.Add(key, value);
  });
  if (s.ok()) s = builder.Finish();
  std::unique_ptr<SSTable> table;
  // Open against a job-local IoStats: io_stats_ is shared with foreground
  // reads that charge it under mu_, and the lock is dropped here. The handle
  // is re-pointed at io_stats_ once the lock is re-held, below.
  IoStats open_io;
  if (s.ok()) {
    auto opened = SSTable::Open(path, table_seq, &open_io);
    if (opened.ok()) {
      table = opened.MoveValue();
    } else {
      s = opened.status();
    }
  }
  mu_.Lock();
  if (!s.ok()) return s;
  io_stats_.Accumulate(open_io);
  table->set_io_sink(&io_stats_);

  if (tiers_.empty()) tiers_.emplace_back();
  table->set_tier(0);  // fresh flushes always enter the newest tier
  tiers_[0].push_back(std::move(table));
  pending_.pop_front();
  RebuildFlatViewLocked();
  // Commit: the MANIFEST now references the table and no longer lists the
  // flushed segments. Only after that commit may the WAL files go away.
  K2_RETURN_NOT_OK(WriteManifestLocked());
  for (uint64_t wseq : job.wal_seqs) {
    env_->RemoveFile(WalFilePath(wseq));  // best-effort; replay is idempotent
  }
  return Status::OK();
}

Status LsmStore::CompactLocked() {
  for (size_t tier = 0; tier < tiers_.size(); ++tier) {
    if (tiers_[tier].size() < options_.tier_fanout) continue;

    // Snapshot the inputs; only this thread mutates tiers_, so the set is
    // stable across the unlocked merge.
    struct Input {
      std::string path;
      uint64_t seq;
      uint64_t entries;
    };
    std::vector<Input> inputs;
    for (const auto& table : tiers_[tier]) {
      inputs.push_back(Input{table->path(), table->seq(), table->num_entries()});
    }
    const uint64_t out_seq = next_seq_++;
    const std::string out_path = TableFilePath(out_seq);

    mu_.Unlock();
    // Merge through private handles so the foreground's table handles (with
    // their mutable block caches) are never shared across threads. Sort-based
    // merge: materialize (key, seq, value), keep the newest version of each
    // key. Table sizes at our scales fit comfortably in memory.
    IoStats merge_io;
    IoStats open_io;  // Open-time reads of the merged table (query-path IO)
    struct Row {
      uint64_t key;
      uint64_t seq;
      LsmValue value;
    };
    std::vector<Row> rows;
    uint64_t total = 0;
    for (const Input& in : inputs) total += in.entries;
    rows.reserve(total);
    Status s;
    for (const Input& in : inputs) {
      auto handle = SSTable::Open(in.path, in.seq, &merge_io);
      if (!handle.ok()) {
        s = handle.status();
        break;
      }
      s = handle.value()->Scan(0, ~0ULL,
                               [&](uint64_t key, const LsmValue& value) {
                                 rows.push_back(Row{key, in.seq, value});
                               });
      if (!s.ok()) break;
    }
    std::unique_ptr<SSTable> merged;
    if (s.ok()) {
      std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        if (a.key != b.key) return a.key < b.key;
        return a.seq > b.seq;  // newest first within a key
      });
      SSTableBuilder builder(env_, out_path);
      builder.Reserve(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        if (i > 0 && rows[i].key == rows[i - 1].key) continue;  // older version
        s = builder.Add(rows[i].key, rows[i].value);
        if (!s.ok()) break;
      }
      if (s.ok()) s = builder.Finish();
      if (s.ok()) {
        // Same unlocked-Open rule as the flush job: charge a local IoStats,
        // fold into the shared counters under the lock below.
        auto opened = SSTable::Open(out_path, out_seq, &open_io);
        if (opened.ok()) {
          merged = opened.MoveValue();
        } else {
          s = opened.status();
        }
      }
    }
    mu_.Lock();
    bg_io_.Accumulate(merge_io);
    if (!s.ok()) return s;
    io_stats_.Accumulate(open_io);
    merged->set_io_sink(&io_stats_);

    std::vector<std::unique_ptr<SSTable>> graveyard;
    graveyard.swap(tiers_[tier]);
    if (tier + 1 >= tiers_.size()) tiers_.emplace_back();
    merged->set_tier(static_cast<uint32_t>(tier + 1));
    tiers_[tier + 1].push_back(std::move(merged));
    ++compactions_run_;
    RebuildFlatViewLocked();
    K2_RETURN_NOT_OK(WriteManifestLocked());
    // The inputs left the MANIFEST with that commit; their files and handles
    // can go (recovery sweeps any unlink a crash interrupts).
    for (const auto& old : graveyard) env_->RemoveFile(old->path());
    // A cascade may now be due in tier+1; the loop continues upward.
  }
  return Status::OK();
}

void LsmStore::RebuildFlatViewLocked() {
  flat_newest_first_.clear();
  for (auto& tier : tiers_) {
    for (auto& table : tier) flat_newest_first_.push_back(table.get());
  }
  std::sort(flat_newest_first_.begin(), flat_newest_first_.end(),
            [](const SSTable* a, const SSTable* b) { return a->seq() > b->seq(); });
}

// ---------------------------------------------------------------------------
// Background worker
// ---------------------------------------------------------------------------

void LsmStore::StartWorker() {
  {
    // worker_started_ is read under mu_ by the rotate/drain paths; setting
    // it unlocked in the constructor was benign only because no other
    // thread exists yet — the guard keeps the rule uniform.
    MutexLock lock(mu_);
    worker_started_ = true;
  }
  worker_ = std::thread([this] { WorkerMain(); });
}

void LsmStore::StopWorker() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  drain_cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

void LsmStore::WorkerMain() {
  MutexLock lock(mu_);
  for (;;) {
    while (!stop_ && (pending_.empty() || !write_error_.ok())) {
      work_cv_.Wait(mu_);
    }
    if (stop_) return;  // queued data stays recoverable through the WAL
    worker_busy_ = true;
    Status s = FlushFrontLocked();
    if (s.ok()) s = CompactLocked();
    if (!s.ok()) write_error_ = s;
    worker_busy_ = false;
    drain_cv_.NotifyAll();
  }
}

// ---------------------------------------------------------------------------
// Bulk load / reads / metadata
// ---------------------------------------------------------------------------

Status LsmStore::BulkLoad(const Dataset& dataset) {
  K2_RETURN_NOT_OK(init_status_);
  {
    MutexLock lock(mu_);
    // Let any in-flight background job finish, then reset all content —
    // including a sticky write error: a reload is a fresh start.
    while (worker_busy_) drain_cv_.Wait(mu_);
    std::vector<std::string> doomed;
    for (const PendingMemtable& p : pending_) {
      for (uint64_t seq : p.wal_seqs) doomed.push_back(WalFilePath(seq));
    }
    pending_.clear();
    for (auto& tier : tiers_) {
      for (auto& table : tier) doomed.push_back(table->path());
    }
    for (uint64_t seq : active_wal_seqs_) doomed.push_back(WalFilePath(seq));
    if (wal_ != nullptr) wal_->Close();
    wal_.reset();
    tiers_.clear();
    flat_newest_first_.clear();
    memtable_ = std::make_unique<lsm::SkipList>();
    tick_cache_.clear();
    num_points_ = 0;
    write_error_ = Status::OK();
    for (const std::string& path : doomed) env_->RemoveFile(path);
    K2_RETURN_NOT_OK(OpenActiveWalLocked(/*fresh_wal_set=*/true));
    Status s = WriteManifestLocked();
    if (!s.ok()) {
      write_error_ = s;
      return s;
    }
    bulk_loading_ = true;
  }

  // Route every row through the write path so that flushes and compactions
  // actually happen — the generators emit in time order, which mirrors how
  // movement data arrives in an operational store. WAL logging is off until
  // the final Flush has made everything durable as SSTables (see header).
  Status load = Status::OK();
  for (const PointRecord& rec : dataset.records()) {
    load = Put(rec.t, rec.oid, rec.x, rec.y);
    if (!load.ok()) break;
  }
  {
    MutexLock lock(mu_);
    bulk_loading_ = false;
  }
  K2_RETURN_NOT_OK(load);
  K2_RETURN_NOT_OK(Flush());

  MutexLock lock(mu_);
  num_points_ = dataset.num_points();
  // Loading routed every row through Put, so flush/compaction IO landed in
  // io_stats_ — reset, or the first mining run's pruning_ratio() would be
  // polluted by ingest reads (Table 5 numbers).
  io_stats_.Clear();
  bg_io_.Clear();
  return Status::OK();
}

size_t LsmStore::CollectMemsLocked(const lsm::SkipList** mems) const {
  size_t n = 0;
  mems[n++] = memtable_.get();
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    mems[n++] = it->mem.get();
  }
  return n;
}

// Stack-buffer capacity for the per-read memtable list: backpressure bounds
// pending_ at max_pending_memtables (default 2), so 1 + pending always fits
// unless a caller cranks the option; then reads fall back to the heap.
constexpr size_t kMaxReadMems = 8;

Status LsmStore::ScanTimestamp(Timestamp t, std::vector<SnapshotPoint>* out) {
  MutexLock lock(mu_);
  K2_RETURN_NOT_OK(init_status_);
  const lsm::SkipList* stack_mems[kMaxReadMems];
  std::vector<const lsm::SkipList*> heap_mems;
  const lsm::SkipList** mems = stack_mems;
  if (1 + pending_.size() > kMaxReadMems) {
    heap_mems.resize(1 + pending_.size());
    mems = heap_mems.data();
  }
  const size_t n = CollectMemsLocked(mems);
  return LsmScanTimestamp(mems, n, flat_newest_first_, t, out, &io_stats_);
}

Status LsmStore::GetPoints(Timestamp t, const ObjectSet& objects,
                           std::vector<SnapshotPoint>* out) {
  MutexLock lock(mu_);
  K2_RETURN_NOT_OK(init_status_);
  const lsm::SkipList* stack_mems[kMaxReadMems];
  std::vector<const lsm::SkipList*> heap_mems;
  const lsm::SkipList** mems = stack_mems;
  if (1 + pending_.size() > kMaxReadMems) {
    heap_mems.resize(1 + pending_.size());
    mems = heap_mems.data();
  }
  const size_t n = CollectMemsLocked(mems);
  return LsmGetPoints(mems, n, flat_newest_first_, options_.use_bloom, t,
                      objects, out, &io_stats_);
}

Result<std::unique_ptr<Store>> LsmStore::CreateReadSnapshot() {
  MutexLock lock(mu_);
  K2_RETURN_NOT_OK(init_status_);
  // Queued flushes must land first so the frozen run plus the table files
  // cover everything; a store with a sticky write error cannot guarantee
  // that, so snapshotting it fails with the same error.
  K2_RETURN_NOT_OK(DrainLocked());
  SortedRun run;
  // ForEach visits in key order, so the run is born sorted.
  memtable_->ForEach(
      [&](uint64_t key, const LsmValue& value) { run.Add(key, value); });
  auto snapshot = std::make_unique<LsmReadSnapshot>(
      std::move(run), options_.use_bloom, tick_cache_, num_points_);
  // Open a private handle per immutable table, preserving newest-first
  // order; re-reading each table's resident index and bloom is the
  // per-snapshot setup cost, charged to the snapshot's io_stats().
  for (SSTable* table : flat_newest_first_) {
    K2_RETURN_NOT_OK(
        snapshot->AddTable(table->path(), table->seq(), table->tier()));
  }
  return std::unique_ptr<Store>(std::move(snapshot));
}

// Invariant (analysis off): tick_cache_ is written only by the external
// writer thread under mu_ (never by the background worker), and the Store
// contract forbids const metadata reads concurrent with a writer — so these
// unlocked reads cannot race. See docs/ARCHITECTURE.md, "Lock discipline".
TimeRange LsmStore::time_range() const K2_NO_THREAD_SAFETY_ANALYSIS {
  if (tick_cache_.empty()) return TimeRange{0, -1};
  return TimeRange{tick_cache_.front(), tick_cache_.back()};
}

// Invariant (analysis off): same unlocked const-read contract as
// time_range() above.
const std::vector<Timestamp>& LsmStore::timestamps() const
    K2_NO_THREAD_SAFETY_ANALYSIS {
  return tick_cache_;
}

Status LsmStore::write_error() const {
  MutexLock lock(mu_);
  return write_error_;
}

size_t LsmStore::num_sstables() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& tier : tiers_) n += tier.size();
  return n;
}

size_t LsmStore::num_tiers() const {
  MutexLock lock(mu_);
  return tiers_.size();
}

size_t LsmStore::active_wal_segments() const {
  MutexLock lock(mu_);
  return active_wal_seqs_.size();
}

size_t LsmStore::memtable_entries() const {
  MutexLock lock(mu_);
  return memtable_->size();
}

uint64_t LsmStore::compactions_run() const {
  MutexLock lock(mu_);
  return compactions_run_;
}

IoStats LsmStore::background_io_stats() const {
  MutexLock lock(mu_);
  return bg_io_;
}

}  // namespace k2
