#include "serve/query.h"

#include <algorithm>

namespace k2 {

namespace {

/// a := a ∩ b; both ascending.
void IntersectInto(std::vector<ConvoyId>* a, const std::vector<ConvoyId>& b) {
  size_t out = 0, j = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    while (j < b.size() && b[j] < (*a)[i]) ++j;
    if (j < b.size() && b[j] == (*a)[i]) (*a)[out++] = (*a)[i];
  }
  a->resize(out);
}

}  // namespace

void ConvoyQueryEngine::FindIds(const CatalogSnapshot& snap,
                                const ConvoyQuery& query,
                                std::vector<ConvoyId>* out) {
  out->clear();
  if (query.unconstrained()) {
    out->resize(snap.size());
    for (size_t i = 0; i < out->size(); ++i) {
      (*out)[i] = static_cast<ConvoyId>(i);
    }
    return;
  }
  // Evaluate each populated predicate through its index and intersect the
  // ascending id lists, cheapest index first (postings are pre-materialized,
  // the interval cut is O(log n + k), the grid scan touches cells).
  bool seeded = false;
  std::vector<ConvoyId> ids;
  if (query.object.has_value()) {
    snap.ByObject(*query.object, out);
    seeded = true;
    if (out->empty()) return;
  }
  if (query.time_window.has_value()) {
    snap.ByTimeWindow(*query.time_window, seeded ? &ids : out);
    if (seeded) IntersectInto(out, ids);
    seeded = true;
    if (out->empty()) return;
  }
  if (query.region.has_value()) {
    snap.ByRegion(*query.region, seeded ? &ids : out);
    if (seeded) IntersectInto(out, ids);
  }
}

void ConvoyQueryEngine::TopKIds(const CatalogSnapshot& snap,
                                const ConvoyQuery& query, ConvoyRank rank,
                                size_t k, std::vector<ConvoyId>* out) {
  if (query.unconstrained()) {
    const std::vector<ConvoyId>& ranked = snap.Ranked(rank);
    out->assign(ranked.begin(),
                ranked.begin() + std::min(k, ranked.size()));
    return;
  }
  FindIds(snap, query, out);
  const size_t keep = std::min(k, out->size());
  std::partial_sort(out->begin(), out->begin() + keep, out->end(),
                    [&snap, rank](ConvoyId a, ConvoyId b) {
                      return snap.RankBefore(rank, a, b);
                    });
  out->resize(keep);
}

std::shared_ptr<const CatalogSnapshot> ConvoyQueryEngine::Pin() const {
  return catalog_->snapshot();
}

std::vector<Convoy> ConvoyQueryEngine::Materialize(
    const CatalogSnapshot& snap, const std::vector<ConvoyId>& ids) const {
  std::vector<Convoy> out;
  out.reserve(ids.size());
  for (ConvoyId id : ids) out.push_back(snap.convoy(id));
  return out;
}

std::vector<Convoy> ConvoyQueryEngine::ByObject(ObjectId oid) const {
  const auto snap = Pin();
  std::vector<ConvoyId> ids;
  snap->ByObject(oid, &ids);
  return Materialize(*snap, ids);
}

std::vector<Convoy> ConvoyQueryEngine::ByTimeWindow(TimeRange window) const {
  const auto snap = Pin();
  std::vector<ConvoyId> ids;
  snap->ByTimeWindow(window, &ids);
  return Materialize(*snap, ids);
}

std::vector<Convoy> ConvoyQueryEngine::ByRegion(const Rect& region) const {
  const auto snap = Pin();
  std::vector<ConvoyId> ids;
  snap->ByRegion(region, &ids);
  return Materialize(*snap, ids);
}

std::vector<Convoy> ConvoyQueryEngine::TopK(ConvoyRank rank, size_t k) const {
  return TopK(ConvoyQuery{}, rank, k);
}

std::vector<Convoy> ConvoyQueryEngine::Find(const ConvoyQuery& query) const {
  const auto snap = Pin();
  std::vector<ConvoyId> ids;
  FindIds(*snap, query, &ids);
  return Materialize(*snap, ids);
}

std::vector<Convoy> ConvoyQueryEngine::TopK(const ConvoyQuery& query,
                                            ConvoyRank rank, size_t k) const {
  const auto snap = Pin();
  std::vector<ConvoyId> ids;
  TopKIds(*snap, query, rank, k, &ids);
  return Materialize(*snap, ids);
}

}  // namespace k2
